/// @file
/// Shared benchmark harness: constructs any evaluated allocator by name on
/// a fresh pod, runs per-thread workloads, and reports wall-clock plus
/// simulated time and memory (see DESIGN.md §2 on why both).
///
/// Memory-mode naming follows Fig. 12: "local" = host DRAM latencies,
/// "hwcc" = CXL memory with inter-host HWcc, "mcas" = CXL memory with no
/// HWcc (all synchronization through the NMP engine).

#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/boostish.h"
#include "baselines/cxlalloc_adapter.h"
#include "baselines/pod_sharded_adapter.h"
#include "baselines/cxlshmish.h"
#include "baselines/lightningish.h"
#include "baselines/mimic.h"
#include "baselines/rallocish.h"
#include "common/cacheline.h"
#include "common/stats.h"
#include "cxlalloc/allocator.h"
#include "cxlalloc/pod_shard.h"
#include "obs/registry.h"
#include "pod/pod.h"
#include "pod/topology.h"

namespace bench {

/// Process-wide metrics switch. When non-null (bench::parse_options sets it
/// for --metrics-json/--metrics-csv runs), make_bundle wires cxlalloc's op
/// instrumentation into this registry and run_threads publishes each
/// session's MemSession counters and sim_ns into it. Null (the default)
/// keeps all hot paths uninstrumented.
inline obs::MetricsRegistry*&
bundle_metrics()
{
    static obs::MetricsRegistry* registry = nullptr;
    return registry;
}

/// Memory substrate for a run (Fig. 12 series).
enum class MemoryMode { Local, CxlHwcc, CxlMcas };

inline const char*
to_string(MemoryMode m)
{
    switch (m) {
      case MemoryMode::Local:
        return "local";
      case MemoryMode::CxlHwcc:
        return "hwcc";
      case MemoryMode::CxlMcas:
        return "mcas";
    }
    return "?";
}

/// The seven allocators of the paper's evaluation (Table 1).
inline std::vector<std::string>
all_allocators()
{
    return {"cxlalloc",     "cxlalloc-nonrecoverable",
            "mimalloc-like", "ralloc-like",
            "cxl-shm-like",  "boost-like",
            "lightning-like"};
}

/// One fully constructed allocator-under-test on its own fresh pod.
struct Bundle {
    std::string name;
    MemoryMode mode = MemoryMode::Local;
    std::unique_ptr<pod::Pod> pod;
    std::unique_ptr<cxlalloc::CxlAllocator> cxl_heap; // when cxlalloc
    std::unique_ptr<baselines::PodAllocator> alloc;
    pod::Process* process = nullptr;
    cxl::LatencyModel latency;
    bool use_latency_model = false;
    /// Device offset of the extra region callers requested (index arrays).
    cxl::HeapOffset extra_base = 0;

    std::unique_ptr<pod::ThreadContext>
    thread(pod::Process* proc = nullptr)
    {
        auto ctx = pod->create_thread(proc != nullptr ? proc : process);
        alloc->attach_thread(*ctx);
        if (use_latency_model) {
            ctx->mem().set_latency_model(&latency);
        }
        return ctx;
    }
};

/// Heap geometry knobs for a run.
struct Geometry {
    std::uint32_t small_slabs = 2048;       // 64 MiB
    std::uint32_t large_slabs = 96;         // 48 MiB
    std::uint32_t huge_regions = 16;
    std::uint64_t huge_region_size = 8 << 20;
    std::uint64_t extra_bytes = 0;          ///< index arrays, queue meta...
    /// Full hardware coherence (the paper's DRAM-machine experiments,
    /// Figs. 7-10): atomics work anywhere, including the extra region.
    bool full_hwcc = false;
    /// Enforce PC-T mapping checks per access (Fig. 10 huge study).
    bool checked_mappings = false;
    /// Per-shard reference-cell table (Layout::app_sync; detectable-CAS
    /// words the tiered benchmarks and the migrator publish through).
    std::uint64_t app_sync_bytes = 0;
    /// Tiered placement knobs, used only when the pod topology has
    /// LocalDram windows (pod::Topology::with_local_dram): geometry of the
    /// per-host DRAM shard and the Config::dram_percent /
    /// Config::dram_max_block policy split.
    std::uint32_t dram_small_slabs = 64; // 2 MiB
    std::uint32_t dram_percent = 0;
    std::uint64_t dram_max_block = 0;    // 0 = small blocks only
};

/// Builds @p which ("cxlalloc", "ralloc-like", ...) on a fresh device.
inline Bundle
make_bundle(const std::string& which, const Geometry& geom,
            MemoryMode mode = MemoryMode::Local)
{
    Bundle b;
    b.name = which;
    b.mode = mode;
    switch (mode) {
      case MemoryMode::Local:
        b.latency = cxl::LatencyModel::local_dram();
        break;
      case MemoryMode::CxlHwcc:
        b.latency = cxl::LatencyModel::cxl_hwcc();
        break;
      case MemoryMode::CxlMcas:
        b.latency = cxl::LatencyModel::cxl_mcas();
        break;
    }
    b.use_latency_model = mode != MemoryMode::Local;
    cxl::CoherenceMode coherence = mode == MemoryMode::CxlMcas
                                       ? cxl::CoherenceMode::NoHwcc
                                       : (geom.full_hwcc
                                              ? cxl::CoherenceMode::FullHwcc
                                              : cxl::CoherenceMode::PartialHwcc);

    if (which == "cxlalloc" || which == "cxlalloc-nonrecoverable") {
        cxlalloc::Config cfg;
        cfg.small_slabs = geom.small_slabs;
        cfg.large_slabs = geom.large_slabs;
        cfg.huge_regions = geom.huge_regions;
        cfg.huge_region_size = geom.huge_region_size;
        cfg.recoverable = which == "cxlalloc";
        pod::PodConfig pc;
        pc.device = cxlalloc::Layout(cfg).device_config(coherence);
        pc.checked_mappings = geom.checked_mappings;
        b.extra_base = pc.device.size;
        pc.device.size += (geom.extra_bytes + cxl::kPageSize - 1) &
                          ~(cxl::kPageSize - 1);
        b.pod = std::make_unique<pod::Pod>(pc);
        b.cxl_heap = std::make_unique<cxlalloc::CxlAllocator>(*b.pod, cfg);
        b.cxl_heap->set_metrics(bundle_metrics());
        b.process = b.pod->create_process();
        b.cxl_heap->attach(*b.process);
        b.alloc =
            std::make_unique<baselines::CxlallocAdapter>(b.cxl_heap.get());
        return b;
    }

    // Baselines share a flat arena; ralloc's metadata goes at the front of
    // the sync region so it works under mCAS.
    std::uint64_t arena_size =
        static_cast<std::uint64_t>(geom.small_slabs) * (32 << 10) +
        static_cast<std::uint64_t>(geom.large_slabs) * (512 << 10) +
        geom.huge_regions * geom.huge_region_size;
    std::uint32_t ralloc_slabs =
        static_cast<std::uint32_t>(arena_size / (64 << 10));
    std::uint64_t meta_bytes =
        baselines::Rallocish::meta_size(ralloc_slabs) + 4096;
    std::uint64_t arena =
        (64 + meta_bytes + cxl::kPageSize - 1) & ~(cxl::kPageSize - 1);

    pod::PodConfig pc;
    pc.device.mode = coherence;
    pc.checked_mappings = geom.checked_mappings;
    pc.device.sync_region_size = arena; // metadata prefix is coherent
    b.extra_base = arena + arena_size;
    pc.device.size = ((b.extra_base + geom.extra_bytes + cxl::kPageSize - 1) &
                      ~(cxl::kPageSize - 1));
    b.pod = std::make_unique<pod::Pod>(pc);
    b.process = b.pod->create_process();

    if (which == "mimalloc-like") {
        b.alloc = std::make_unique<baselines::Mimic>(*b.pod, arena,
                                                     arena_size);
    } else if (which == "boost-like") {
        b.alloc = std::make_unique<baselines::Boostish>(*b.pod, arena,
                                                        arena_size);
    } else if (which == "lightning-like") {
        b.alloc = std::make_unique<baselines::Lightningish>(*b.pod, arena,
                                                            arena_size);
    } else if (which == "cxl-shm-like") {
        b.alloc = std::make_unique<baselines::Cxlshmish>(*b.pod, arena,
                                                         arena_size);
    } else if (which == "ralloc-like") {
        b.alloc = std::make_unique<baselines::Rallocish>(
            *b.pod, /*meta=*/64, /*data=*/arena, ralloc_slabs);
    } else {
        std::fprintf(stderr, "unknown allocator '%s'\n", which.c_str());
        std::abort();
    }
    return b;
}

/// Result of one multi-threaded run.
struct RunResult {
    double wall_s = 0;
    std::uint64_t ops = 0;
    std::uint64_t sim_ns = 0; ///< max over threads (critical path)
    std::uint64_t committed_bytes = 0;
    std::uint64_t hwcc_bytes = 0;
    std::uint64_t metadata_bytes = 0;
    cxl::MemEventCounters events;

    double
    mops_wall() const
    {
        return wall_s > 0 ? static_cast<double>(ops) / wall_s / 1e6 : 0;
    }

    double
    mops_sim() const
    {
        return sim_ns > 0
                   ? static_cast<double>(ops) / static_cast<double>(sim_ns) *
                         1e3
                   : 0;
    }
};

/// Runs @p body once per thread (each on its own pod process when
/// @p process_per_thread) and aggregates results. @p body returns the
/// number of operations it performed.
inline RunResult
run_threads(Bundle& b, std::uint32_t nthreads,
            const std::function<std::uint64_t(pod::ThreadContext&,
                                              std::uint32_t)>& body,
            bool process_per_thread = false)
{
    std::vector<std::thread> workers;
    std::vector<std::uint64_t> ops(nthreads, 0);
    std::vector<std::uint64_t> sim(nthreads, 0);
    std::vector<cxl::MemEventCounters> events(nthreads);
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t w = 0; w < nthreads; w++) {
        workers.emplace_back([&, w] {
            pod::Process* proc = b.process;
            if (process_per_thread) {
                proc = b.pod->create_process();
                if (b.cxl_heap != nullptr) {
                    b.cxl_heap->attach(*proc);
                }
            }
            auto ctx = b.thread(proc);
            ops[w] = body(*ctx, w);
            sim[w] = ctx->mem().sim_ns();
            events[w] = ctx->mem().counters();
            if (obs::MetricsRegistry* reg = bundle_metrics()) {
                ctx->mem().publish_metrics(*reg);
                reg->shard(ctx->tid()).add(reg->counter("run.ops"), ops[w]);
            }
            b.pod->release_thread(std::move(ctx));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    RunResult r;
    r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    for (std::uint32_t w = 0; w < nthreads; w++) {
        r.ops += ops[w];
        r.sim_ns = std::max(r.sim_ns, sim[w]);
        r.events += events[w];
    }
    if (obs::MetricsRegistry* reg = bundle_metrics()) {
        reg->set_gauge(reg->gauge("run.sim_ns_max"),
                       static_cast<double>(r.sim_ns));
    }
    r.committed_bytes = b.pod->device().committed_bytes();
    r.metadata_bytes = b.alloc->metadata_overhead_bytes();
    auto probe = b.thread();
    r.hwcc_bytes = b.alloc->hwcc_bytes(probe->mem());
    b.pod->release_thread(std::move(probe));
    return r;
}

/// Prints one benchmark series row.
inline void
print_row(const char* figure, const std::string& workload,
          const std::string& alloc, std::uint32_t threads,
          const RunResult& r, const char* note = "")
{
    std::printf("%-6s %-16s %-24s t=%-2u  %9.3f Mops/s (wall)  "
                "mem=%-11s hwcc=%-11s%s%s\n",
                figure, workload.c_str(), alloc.c_str(), threads,
                r.mops_wall(),
                cxlcommon::format_bytes(r.committed_bytes + r.metadata_bytes)
                    .c_str(),
                cxlcommon::format_bytes(r.hwcc_bytes).c_str(),
                note[0] != '\0' ? "  " : "", note);
}

// ---------------------------------------------------------------------------
// Multi-host pod runs (topology-aware sharded allocation; see
// docs/POD_TOPOLOGY.md).

/// A sharded cxlalloc heap on a multi-host pod: one process per host, one
/// allocator shard per device window.
struct PodBundle {
    MemoryMode mode = MemoryMode::CxlHwcc;
    std::unique_ptr<pod::Pod> pod;
    std::unique_ptr<cxlalloc::PodShardedAllocator> heap;
    std::unique_ptr<baselines::PodShardedAdapter> alloc;
    std::vector<pod::Process*> host_process; // index = HostId
    cxl::LatencyModel latency;
    /// Per-host private extra bytes (from Geometry::extra_bytes), placed in
    /// the host's home window after the shard layout.
    std::uint64_t extra_per_host = 0;

    /// Spawns a thread on @p host. The latency model is always installed:
    /// pod runs exist to measure edge costs.
    std::unique_ptr<pod::ThreadContext>
    thread(pod::HostId host)
    {
        auto ctx = pod->create_thread(host_process[host]);
        alloc->attach_thread(*ctx);
        ctx->mem().set_latency_model(&latency);
        return ctx;
    }

    /// Device offset of @p host's private extra slice: hosts sharing a home
    /// device get consecutive extra_per_host slices of its window.
    cxl::HeapOffset
    extra_base_for_host(pod::HostId host) const
    {
        const pod::Topology& topo = pod->topology();
        cxl::DeviceId home = topo.home_of(host);
        std::uint64_t rank = 0;
        for (pod::HostId h = 0; h < host; h++) {
            if (topo.home_of(h) == home) {
                rank++;
            }
        }
        return heap->extra_base(home) + rank * extra_per_host;
    }
};

/// Builds a sharded cxlalloc heap over @p topology. Each device window
/// holds one shard of @p geom's geometry plus enough extra space to give
/// every host homed on it a private Geometry::extra_bytes slice.
inline PodBundle
make_pod_bundle(const pod::Topology& topology, const Geometry& geom,
                MemoryMode mode = MemoryMode::CxlHwcc)
{
    PodBundle b;
    b.mode = mode;
    switch (mode) {
      case MemoryMode::Local:
        b.latency = cxl::LatencyModel::local_dram();
        break;
      case MemoryMode::CxlHwcc:
        b.latency = cxl::LatencyModel::cxl_hwcc();
        break;
      case MemoryMode::CxlMcas:
        b.latency = cxl::LatencyModel::cxl_mcas();
        break;
    }
    cxl::CoherenceMode coherence = mode == MemoryMode::CxlMcas
                                       ? cxl::CoherenceMode::NoHwcc
                                       : (geom.full_hwcc
                                              ? cxl::CoherenceMode::FullHwcc
                                              : cxl::CoherenceMode::PartialHwcc);

    cxlalloc::Config cfg;
    cfg.small_slabs = geom.small_slabs;
    cfg.large_slabs = geom.large_slabs;
    cfg.huge_regions = geom.huge_regions;
    cfg.huge_region_size = geom.huge_region_size;
    cfg.app_sync_bytes = geom.app_sync_bytes;
    cfg.dram_percent = geom.dram_percent;
    cfg.dram_max_block = geom.dram_max_block;

    // LocalDram windows hold a smaller host-private shard; the policy split
    // (dram_percent) rides on the shard config above.
    bool tiered = topology.has_dram_tier();
    cxlalloc::Config dram_cfg = cfg;
    if (tiered) {
        dram_cfg.small_slabs = geom.dram_small_slabs;
        dram_cfg.large_slabs = 8;
        dram_cfg.huge_regions = 1;
        dram_cfg.huge_region_size = 1 << 20;
    }

    // Worst-case hosts homed on one device decides the per-window extra.
    std::vector<std::uint32_t> homed(topology.devices(), 0);
    for (pod::HostId h = 0; h < topology.hosts(); h++) {
        homed[topology.home_of(h)]++;
    }
    std::uint32_t max_homed = 1;
    for (std::uint32_t n : homed) {
        max_homed = std::max(max_homed, n);
    }
    b.extra_per_host = (geom.extra_bytes + cxlcommon::kCacheLine - 1) &
                       ~std::uint64_t{cxlcommon::kCacheLine - 1};

    pod::PodConfig pc;
    pc.device = cxlalloc::PodShardedAllocator::device_config(
        cfg, topology, coherence, /*simulate_cache=*/false,
        /*extra_window_bytes=*/b.extra_per_host * max_homed,
        tiered ? &dram_cfg : nullptr);
    pc.checked_mappings = geom.checked_mappings;
    pc.topology = topology;
    b.pod = std::make_unique<pod::Pod>(pc);
    b.heap = std::make_unique<cxlalloc::PodShardedAllocator>(
        *b.pod, cfg, tiered ? &dram_cfg : nullptr);
    b.heap->set_metrics(bundle_metrics());
    b.host_process.resize(topology.hosts());
    for (pod::HostId h = 0; h < topology.hosts(); h++) {
        b.host_process[h] = b.pod->create_process(h);
        b.heap->attach(*b.host_process[h]);
    }
    b.alloc = std::make_unique<baselines::PodShardedAdapter>(b.heap.get());
    return b;
}

/// Runs @p body on @p hosts x @p threads_per_host threads — thread (h, i)
/// runs on host h's process and sees worker index h * threads_per_host + i.
/// Aggregation matches run_threads.
inline RunResult
run_pod_threads(PodBundle& b, std::uint32_t hosts,
                std::uint32_t threads_per_host,
                const std::function<std::uint64_t(pod::ThreadContext&,
                                                  pod::HostId,
                                                  std::uint32_t)>& body)
{
    std::uint32_t nthreads = hosts * threads_per_host;
    std::vector<std::thread> workers;
    std::vector<std::uint64_t> ops(nthreads, 0);
    std::vector<std::uint64_t> sim(nthreads, 0);
    std::vector<cxl::MemEventCounters> events(nthreads);
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t w = 0; w < nthreads; w++) {
        workers.emplace_back([&, w] {
            auto host = static_cast<pod::HostId>(w / threads_per_host);
            auto ctx = b.thread(host);
            ops[w] = body(*ctx, host, w);
            sim[w] = ctx->mem().sim_ns();
            events[w] = ctx->mem().counters();
            if (obs::MetricsRegistry* reg = bundle_metrics()) {
                ctx->mem().publish_metrics(*reg);
                reg->shard(ctx->tid()).add(reg->counter("run.ops"), ops[w]);
            }
            b.pod->release_thread(std::move(ctx));
        });
    }
    for (auto& th : workers) {
        th.join();
    }
    RunResult r;
    r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    for (std::uint32_t w = 0; w < nthreads; w++) {
        r.ops += ops[w];
        r.sim_ns = std::max(r.sim_ns, sim[w]);
        r.events += events[w];
    }
    if (obs::MetricsRegistry* reg = bundle_metrics()) {
        reg->set_gauge(reg->gauge("run.sim_ns_max"),
                       static_cast<double>(r.sim_ns));
    }
    r.committed_bytes = b.pod->device().committed_bytes();
    r.metadata_bytes = b.alloc->metadata_overhead_bytes();
    r.hwcc_bytes = b.heap->hwcc_bytes();
    return r;
}

} // namespace bench
