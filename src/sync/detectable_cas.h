/// @file
/// Detectable CAS (paper §3.4.2, after Attiya et al. [10]).
///
/// A recovering thread must be able to ask: "did the CAS I was executing
/// when I crashed take effect?" Plain CAS cannot answer this — the value
/// may have been overwritten since. Detectable CAS embeds a (thread id,
/// version) tag in each CAS target word and maintains a global help array:
/// before any thread displaces a tagged word, it records the displaced tag
/// in the help array. A CAS by thread t with version v therefore succeeded
/// iff the word still carries (t, v) or help[t] has advanced to >= v.
///
/// Word format (64 bits, as in the paper — CAS targets are at most 32 bits,
/// widened to 8 B of HWcc memory per slab):
///     [ value:32 | tid:16 | version:16 ]
/// A zero word decodes as value 0 with no owner, so zero-filled memory is a
/// valid initial state.

#pragma once

#include <cstdint>

#include "cxl/mem_ops.h"
#include "cxl/types.h"

namespace cxlsync {

/// Packing helpers for detectable-CAS words.
struct DcasWord {
    static std::uint64_t
    pack(std::uint32_t value, cxl::ThreadId tid, std::uint16_t version)
    {
        return (static_cast<std::uint64_t>(value) << 32) |
               (static_cast<std::uint64_t>(tid) << 16) | version;
    }

    static std::uint32_t value(std::uint64_t word)
    {
        return static_cast<std::uint32_t>(word >> 32);
    }

    static cxl::ThreadId tid(std::uint64_t word)
    {
        return static_cast<cxl::ThreadId>((word >> 16) & 0xffff);
    }

    static std::uint16_t version(std::uint64_t word)
    {
        return static_cast<std::uint16_t>(word & 0xffff);
    }
};

/// Versions are 15-bit circular counters (the allocator's 8-byte recovery
/// record budgets 15 bits for the version field; see cxlalloc/recovery.h).
inline constexpr std::uint16_t kVersionBits = 15;
inline constexpr std::uint16_t kVersionMask = (1u << kVersionBits) - 1;

/// Wrap-aware version comparison over the 15-bit circular space; only the
/// in-flight window matters.
inline bool
version_geq(std::uint16_t a, std::uint16_t b)
{
    std::uint16_t diff = (a - b) & kVersionMask;
    return diff < (1u << (kVersionBits - 1));
}

/// Detectable CAS over words in the HWcc (or device-biased) region.
class DetectableCas {
  public:
    /// @param help_base  offset of the help array: (kMaxThreads + 1) 64-bit
    ///                   words in HWcc memory; entry t holds the highest
    ///                   version of thread t observed displaced.
    /// @param detectable when false (the cxlalloc-nonrecoverable ablation)
    ///                   help recording is skipped and recovery queries are
    ///                   unsupported.
    explicit DetectableCas(cxl::HeapOffset help_base, bool detectable = true)
        : help_base_(help_base), detectable_(detectable)
    {
    }

    struct Result {
        bool success;
        /// Value observed in the word (on failure, the fresh value).
        std::uint32_t observed;
    };

    /// One detectable CAS attempt of @p expected -> @p desired on the
    /// 32-bit value stored at @p word_offset, tagged with the caller's
    /// identity and @p version. Callers retry on failure.
    Result try_cas(cxl::MemSession& mem, cxl::HeapOffset word_offset,
                   std::uint32_t expected, std::uint32_t desired,
                   std::uint16_t version);

    /// Phase 1 of a batched detectable CAS — the staging half of try_cas:
    /// value-checks the word and publishes the displaced owner's success,
    /// then emits the raw word-level operand for MemSession::mcas_post /
    /// mcas_batch. Returns false when the value check already fails
    /// (@p failed filled; nothing to submit). The displaced-owner help
    /// record is written BEFORE the operand can execute, preserving the
    /// recovery invariant of the serial path.
    bool stage(cxl::MemSession& mem, cxl::HeapOffset word_offset,
               std::uint32_t expected, std::uint32_t desired,
               std::uint16_t version, cxl::McasOperand* out, Result* failed);

    /// One staged detectable CAS in a batch.
    struct BatchOp {
        cxl::HeapOffset word_offset = 0;
        std::uint32_t expected = 0;
        std::uint32_t desired = 0;
        std::uint16_t version = 0;
    };

    /// Batched detectable CAS over INDEPENDENT words (distinct
    /// word_offsets; duplicates conflict per Fig. 6(b)): stages every op,
    /// then submits the survivors in ring-sized chunks — one device round
    /// trip per chunk under NoHwcc, a serial coherent-CAS loop otherwise.
    /// results[i] mirrors try_cas: on any failure the freshest observed
    /// value is reported so callers can retry.
    void try_cas_batch(cxl::MemSession& mem, const BatchOp* ops,
                       std::uint32_t n, Result* results);

    /// Reads the 32-bit value currently stored at @p word_offset.
    std::uint32_t
    read(cxl::MemSession& mem, cxl::HeapOffset word_offset)
    {
        return DcasWord::value(mem.atomic_load64(word_offset));
    }

    /// Recovery query: did thread @p mem.tid()'s CAS tagged @p version on
    /// @p word_offset take effect?
    bool did_succeed(cxl::MemSession& mem, cxl::HeapOffset word_offset,
                     std::uint16_t version);

    bool detectable() const { return detectable_; }

  private:
    /// Records that @p tid's CAS tagged @p version is known to have
    /// succeeded (its tag was observed in a word).
    void record_help(cxl::MemSession& mem, cxl::ThreadId tid,
                     std::uint16_t version);

    cxl::HeapOffset help_entry(cxl::ThreadId tid) const
    {
        return help_base_ + static_cast<cxl::HeapOffset>(tid) * 8;
    }

    cxl::HeapOffset help_base_;
    bool detectable_;
};

} // namespace cxlsync
