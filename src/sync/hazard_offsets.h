/// @file
/// Hazard offsets (paper §3.3.2): a variant of hazard pointers [51] that
/// protects *memory mappings* rather than objects.
///
/// Protocol rules:
///  - publish the offset before mapping a huge allocation;
///  - remove it after unmapping;
///  - reclaim a huge allocation only if its descriptor's free bit is set
///    and its offset is published in no thread's hazard list.
///
/// Unlike classic hazard pointers, no post-publication validation step is
/// needed: the racing free would be a use-after-free in the application and
/// is excluded for correct programs (paper §3.3.2, last paragraph).
///
/// Hazard slots live in SWcc memory. They are single-writer (the owning
/// thread), multi-reader; following the paper's huge-heap rule, writers
/// flush+fence after every write and readers flush before every read.

#pragma once

#include <cstdint>

#include "cxl/mem_ops.h"
#include "cxl/types.h"

namespace cxlsync {

/// Fixed-size per-thread hazard offset lists over a shared-memory region.
class HazardOffsets {
  public:
    /// Layout: (kMaxThreads + 1) rows of @p slots_per_thread 8-byte slots
    /// starting at @p base. A zero slot is empty (offset 0 is never valid
    /// huge data, so raw offsets are stored).
    HazardOffsets(cxl::HeapOffset base, std::uint32_t slots_per_thread)
        : base_(base), slots_(slots_per_thread)
    {
    }

    /// Bytes of shared memory the table occupies.
    static std::uint64_t
    footprint(std::uint32_t slots_per_thread)
    {
        return static_cast<std::uint64_t>(cxl::kMaxThreads + 1) *
               slots_per_thread * 8;
    }

    /// Publishes @p offset in a free slot of the calling thread's row.
    /// Returns the slot index; aborts if the row is full (callers size the
    /// row for the worst case: mappings held concurrently by one thread).
    std::uint32_t publish(cxl::MemSession& mem, cxl::HeapOffset offset);

    /// Like publish(), but returns kNoSlot instead of aborting when the
    /// row is full, so callers can reclaim (or fail gracefully).
    std::uint32_t try_publish(cxl::MemSession& mem, cxl::HeapOffset offset);

    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    /// Clears slot @p slot of the calling thread's row.
    void remove(cxl::MemSession& mem, std::uint32_t slot);

    /// Clears the first slot of the calling thread's row containing
    /// @p offset; returns false if not found.
    bool remove_value(cxl::MemSession& mem, cxl::HeapOffset offset);

    /// Scans every thread's row: is @p offset published anywhere?
    bool is_published(cxl::MemSession& mem, cxl::HeapOffset offset);

    std::uint32_t slots_per_thread() const { return slots_; }

    /// Offset of slot @p slot in thread @p tid's row.
    cxl::HeapOffset
    slot_offset(cxl::ThreadId tid, std::uint32_t slot) const
    {
        return base_ + (static_cast<cxl::HeapOffset>(tid) * slots_ + slot) * 8;
    }

  private:
    cxl::HeapOffset base_;
    std::uint32_t slots_;
};

} // namespace cxlsync
