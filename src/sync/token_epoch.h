/// @file
/// Token-passing epoch-based reclamation (paper §5.2.1, after Kim, Brown
/// and Singh [40]).
///
/// The evaluation's key-value index supports deletion; freed nodes must not
/// be reclaimed while concurrent readers may still hold references. Classic
/// EBR has every thread scan all announcements; the token-passing variant
/// circulates a token, and only the holder tries to advance the epoch and
/// reclaim, bounding scan overhead ("batch free can be harmful").
///
/// This is host-side bench/application infrastructure (index bookkeeping),
/// so it lives in ordinary process memory, not on the simulated device.

#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace cxlsync {

/// Deferred reclamation callback.
struct Retired {
    void (*fn)(void* ctx, std::uint64_t arg);
    void* ctx;
    std::uint64_t arg;
};

/// Token-passing EBR for up to @p nthreads participants.
class TokenEpoch {
  public:
    explicit TokenEpoch(std::uint32_t nthreads);

    ~TokenEpoch();

    TokenEpoch(const TokenEpoch&) = delete;
    TokenEpoch& operator=(const TokenEpoch&) = delete;

    /// Enters a read-side critical section for participant @p me.
    void enter(std::uint32_t me);

    /// Leaves the critical section. If @p me holds the token, it attempts
    /// to advance the epoch, reclaims safe limbo lists, and passes the
    /// token on.
    void exit(std::uint32_t me);

    /// Defers reclamation of @p r until two epoch advances have proven no
    /// reader can still hold a reference.
    void retire(std::uint32_t me, Retired r);

    /// Drains every limbo list; callable only when no thread is inside a
    /// critical section (e.g. teardown).
    void drain_all();

    std::uint64_t epoch() const { return global_epoch_.load(); }

  private:
    struct alignas(64) Slot {
        /// Announced epoch; kQuiescent when outside any critical section.
        std::atomic<std::uint64_t> announce{kQuiescent};
        /// Limbo lists bucketed by epoch % 3. Owner-only.
        std::vector<Retired> limbo[3];
        /// Last epoch at which the owner reclaimed its stale bucket.
        std::uint64_t seen_epoch = 0;
        /// Exits by the owner (drives the fallback advance period).
        std::uint64_t exit_count = 0;
    };

    static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

    /// A non-holder scans/advances once per this many exits, so reclamation
    /// stays live when the token parks on an inactive thread.
    static constexpr std::uint64_t kFallbackPeriod = 64;

    void try_advance(std::uint64_t e);

    std::uint32_t nthreads_;
    std::atomic<std::uint64_t> global_epoch_{1};
    std::atomic<std::uint32_t> token_{0};
    std::vector<Slot> slots_;
};

} // namespace cxlsync
