#include "sync/hazard_offsets.h"

#include "common/assert.h"
#include "common/test_faults.h"
#include "sched/hook.h"

namespace cxlsync {

std::uint32_t
HazardOffsets::try_publish(cxl::MemSession& mem, cxl::HeapOffset offset)
{
    CXL_ASSERT(offset != 0, "cannot publish null hazard offset");
    for (std::uint32_t slot = 0; slot < slots_; slot++) {
        cxl::HeapOffset at = slot_offset(mem.tid(), slot);
        if (mem.load<std::uint64_t>(at) == 0) {
            mem.store<std::uint64_t>(at, offset);
            // Huge-heap SWcc rule: flush + fence after every write so other
            // hosts observe the hazard before we install the mapping.
            if (!cxlcommon::test_faults::skip_hazard_publish_flush) {
                mem.flush(at, 8);
                mem.fence();
            }
            sched::hook(sched::Op::HazardPublish, at, offset);
            return slot;
        }
    }
    return kNoSlot;
}

std::uint32_t
HazardOffsets::publish(cxl::MemSession& mem, cxl::HeapOffset offset)
{
    std::uint32_t slot = try_publish(mem, offset);
    CXL_FATAL_IF(slot == kNoSlot,
                 "hazard offset row full; raise slots_per_thread");
    return slot;
}

void
HazardOffsets::remove(cxl::MemSession& mem, std::uint32_t slot)
{
    CXL_ASSERT(slot < slots_, "hazard slot out of range");
    cxl::HeapOffset at = slot_offset(mem.tid(), slot);
    sched::hook(sched::Op::HazardRemove, at, slot);
    mem.store<std::uint64_t>(at, 0);
    mem.flush(at, 8);
    mem.fence();
}

bool
HazardOffsets::remove_value(cxl::MemSession& mem, cxl::HeapOffset offset)
{
    for (std::uint32_t slot = 0; slot < slots_; slot++) {
        cxl::HeapOffset at = slot_offset(mem.tid(), slot);
        if (mem.load<std::uint64_t>(at) == offset) {
            remove(mem, slot);
            return true;
        }
    }
    return false;
}

bool
HazardOffsets::is_published(cxl::MemSession& mem, cxl::HeapOffset offset)
{
    for (std::uint32_t tid = 0; tid <= cxl::kMaxThreads; tid++) {
        for (std::uint32_t slot = 0; slot < slots_; slot++) {
            cxl::HeapOffset at =
                slot_offset(static_cast<cxl::ThreadId>(tid), slot);
            sched::hook(sched::Op::HazardScan, at);
            // Huge-heap SWcc rule: flush before every read so we never act
            // on a stale cached copy of another thread's hazard slot.
            mem.flush(at, 8);
            if (mem.load<std::uint64_t>(at) == offset) {
                return true;
            }
        }
    }
    return false;
}

} // namespace cxlsync
