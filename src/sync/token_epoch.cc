#include "sync/token_epoch.h"

#include "common/assert.h"

namespace cxlsync {

TokenEpoch::TokenEpoch(std::uint32_t nthreads)
    : nthreads_(nthreads), slots_(nthreads)
{
    CXL_ASSERT(nthreads > 0, "TokenEpoch needs at least one participant");
}

TokenEpoch::~TokenEpoch()
{
    drain_all();
}

void
TokenEpoch::enter(std::uint32_t me)
{
    CXL_ASSERT(me < nthreads_, "participant out of range");
    std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    slots_[me].announce.store(e, std::memory_order_seq_cst);
}

void
TokenEpoch::exit(std::uint32_t me)
{
    Slot& slot = slots_[me];
    slot.announce.store(kQuiescent, std::memory_order_release);

    // Each participant reclaims its *own* stale bucket: with the 3-bucket
    // scheme, bucket (e+1) % 3 holds entries retired at epoch <= e-2, which
    // no reader can still reference once the epoch reached e.
    std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    if (slot.seen_epoch != e) {
        auto& limbo = slot.limbo[(e + 1) % 3];
        for (const Retired& r : limbo) {
            r.fn(r.ctx, r.arg);
        }
        limbo.clear();
        slot.seen_epoch = e;
    }

    // The token holder attempts to advance the epoch — the point of token
    // passing is bounding how often the announcement array is scanned. A
    // non-holder still tries occasionally: the token can park on a thread
    // that stopped participating (finished its work, or crashed), and
    // reclamation must stay live without it.
    slot.exit_count++;
    if (token_.load(std::memory_order_relaxed) == me) {
        try_advance(e);
        token_.store((me + 1) % nthreads_, std::memory_order_release);
    } else if (slot.exit_count % kFallbackPeriod == 0) {
        try_advance(e);
    }
}

void
TokenEpoch::retire(std::uint32_t me, Retired r)
{
    std::uint64_t e = global_epoch_.load(std::memory_order_acquire);
    slots_[me].limbo[e % 3].push_back(r);
}

void
TokenEpoch::try_advance(std::uint64_t e)
{
    // The epoch may advance only once every active reader has observed it:
    // a reader announcing an older epoch may still reference nodes retired
    // two epochs ago.
    for (std::uint32_t t = 0; t < nthreads_; t++) {
        std::uint64_t a = slots_[t].announce.load(std::memory_order_acquire);
        if (a != kQuiescent && a < e) {
            return;
        }
    }
    global_epoch_.compare_exchange_strong(e, e + 1,
                                          std::memory_order_acq_rel);
}

void
TokenEpoch::drain_all()
{
    for (auto& slot : slots_) {
        for (auto& bucket : slot.limbo) {
            for (const Retired& r : bucket) {
                r.fn(r.ctx, r.arg);
            }
            bucket.clear();
        }
    }
}

} // namespace cxlsync
