#include "sync/detectable_cas.h"

#include "common/assert.h"
#include "sched/hook.h"

namespace cxlsync {

DetectableCas::Result
DetectableCas::try_cas(cxl::MemSession& mem, cxl::HeapOffset word_offset,
                       std::uint32_t expected, std::uint32_t desired,
                       std::uint16_t version)
{
    sched::hook(sched::Op::DcasTry, word_offset, desired);
    std::uint64_t current = mem.atomic_load64(word_offset);
    if (DcasWord::value(current) != expected) {
        return Result{false, DcasWord::value(current)};
    }
    // Before displacing a tagged word, publish the displaced owner's success
    // so its recovery can detect it even after the word moves on.
    if (detectable_ && DcasWord::tid(current) != cxl::kNoThread) {
        record_help(mem, DcasWord::tid(current), DcasWord::version(current));
    }
    std::uint64_t desired_word =
        DcasWord::pack(desired, mem.tid(), version);
    std::uint64_t expected_word = current;
    if (mem.cas64(word_offset, expected_word, desired_word)) {
        return Result{true, expected};
    }
    return Result{false, DcasWord::value(expected_word)};
}

bool
DetectableCas::stage(cxl::MemSession& mem, cxl::HeapOffset word_offset,
                     std::uint32_t expected, std::uint32_t desired,
                     std::uint16_t version, cxl::McasOperand* out,
                     Result* failed)
{
    std::uint64_t current = mem.atomic_load64(word_offset);
    if (DcasWord::value(current) != expected) {
        *failed = Result{false, DcasWord::value(current)};
        return false;
    }
    // Before displacing a tagged word, publish the displaced owner's
    // success so its recovery can detect it even after the word moves on.
    if (detectable_ && DcasWord::tid(current) != cxl::kNoThread) {
        record_help(mem, DcasWord::tid(current), DcasWord::version(current));
    }
    *out = cxl::McasOperand{
        .target = word_offset,
        .expected = current,
        .swap = DcasWord::pack(desired, mem.tid(), version)};
    return true;
}

void
DetectableCas::try_cas_batch(cxl::MemSession& mem, const BatchOp* ops,
                             std::uint32_t n, Result* results)
{
    std::uint32_t i = 0;
    while (i < n) {
        // Stage one ring's worth of survivors.
        cxl::McasOperand operands[cxl::kNmpRingSlots];
        std::uint32_t index_of[cxl::kNmpRingSlots];
        std::uint32_t staged = 0;
        while (i < n && staged < cxl::kNmpRingSlots) {
            if (stage(mem, ops[i].word_offset, ops[i].expected,
                      ops[i].desired, ops[i].version, &operands[staged],
                      &results[i])) {
                index_of[staged] = i;
                staged++;
            }
            i++;
        }
        if (staged == 0) {
            continue;
        }
        cxl::McasResult raw[cxl::kNmpRingSlots];
        std::uint32_t done = mem.mcas_batch(operands, staged, raw);
        CXL_ASSERT(done == staged, "ring-sized chunk not fully accepted");
        (void)done;
        for (std::uint32_t k = 0; k < staged; k++) {
            Result& r = results[index_of[k]];
            if (raw[k].success) {
                r = Result{true, ops[index_of[k]].expected};
            } else if (raw[k].conflict) {
                // Hardware reports no previous value on conflict; reload
                // so the caller's retry loop sees fresh state.
                r = Result{false,
                           DcasWord::value(mem.atomic_load64(
                               ops[index_of[k]].word_offset))};
            } else {
                r = Result{false, DcasWord::value(raw[k].previous)};
            }
        }
    }
}

bool
DetectableCas::did_succeed(cxl::MemSession& mem,
                           cxl::HeapOffset word_offset, std::uint16_t version)
{
    CXL_ASSERT(detectable_, "recovery query on nonrecoverable DetectableCas");
    std::uint64_t current = mem.atomic_load64(word_offset);
    if (DcasWord::tid(current) == mem.tid() &&
        DcasWord::version(current) == version) {
        return true;
    }
    std::uint64_t help = mem.atomic_load64(help_entry(mem.tid()));
    // Help entries store (version + 1) so that a zero entry means "nothing
    // recorded" even for version 0.
    if (help == 0) {
        return false;
    }
    return version_geq(static_cast<std::uint16_t>(help - 1), version);
}

void
DetectableCas::record_help(cxl::MemSession& mem, cxl::ThreadId tid,
                           std::uint16_t version)
{
    sched::hook(sched::Op::DcasHelp, help_entry(tid), tid);
    cxl::HeapOffset entry = help_entry(tid);
    std::uint64_t biased = static_cast<std::uint64_t>(version) + 1;
    std::uint64_t current = mem.atomic_load64(entry);
    while (true) {
        if (current != 0 &&
            version_geq(static_cast<std::uint16_t>(current - 1), version)) {
            return; // already recorded (or newer)
        }
        if (mem.cas64(entry, current, biased)) {
            return;
        }
        // current reloaded by cas64 on failure; loop.
    }
}

} // namespace cxlsync
