/// @file
/// Interval set tracking a thread's free huge-heap virtual address space
/// (paper Fig. 5 HugeLocal.free: "any deterministic data structure will
/// work here").
///
/// The set is volatile, host-side state: on attach or recovery it is
/// deterministically reconstructed from the reservation array and the
/// thread's huge descriptor list (paper §3.4.2), so it never needs to live
/// in shared memory.

#pragma once

#include <cstdint>
#include <map>

namespace cxlalloc {

/// An ordered set of disjoint [start, start+len) intervals with best-fit
/// carving and coalescing insert.
class IntervalSet {
  public:
    /// Adds [start, start+len), merging with adjacent intervals. The range
    /// must not overlap any existing interval.
    void insert(std::uint64_t start, std::uint64_t len);

    /// Removes exactly [start, start+len), which must be fully contained
    /// in one interval (splitting it if needed).
    void remove(std::uint64_t start, std::uint64_t len);

    /// Carves @p len bytes from the smallest interval that fits (best
    /// fit) and returns its start, or false if nothing fits.
    bool take(std::uint64_t len, std::uint64_t* start);

    /// True if [start, start+len) is entirely free.
    bool contains(std::uint64_t start, std::uint64_t len) const;

    /// Total free bytes.
    std::uint64_t total() const { return total_; }

    /// Number of disjoint intervals (fragmentation metric).
    std::size_t fragments() const { return by_start_.size(); }

    void clear();

  private:
    std::map<std::uint64_t, std::uint64_t> by_start_; ///< start -> len
    std::uint64_t total_ = 0;
};

} // namespace cxlalloc
