#include "cxlalloc/recovery.h"

#include "common/assert.h"
#include "pod/crashpoint.h"

namespace cxlalloc {

void
register_crash_points()
{
    using pod::CrashPointRegistry;
    CrashPointRegistry& reg = CrashPointRegistry::instance();
    namespace cp = crashpoint;
    reg.add(cp::kAfterRecord, "slab.after_record", "SlabHeap (record logged)");
    reg.add(cp::kMidInit, "slab.mid_init", "SlabHeap::init_slab");
    reg.add(cp::kAfterDcas, "slab.after_dcas", "SlabHeap (dcas applied)");
    reg.add(cp::kMidSteal, "slab.mid_steal", "SlabHeap::free_remote");
    reg.add(cp::kMidDetach, "slab.mid_detach", "SlabHeap::detach_full");
    reg.add(cp::kMidFreeLocal, "slab.mid_free_local", "SlabHeap::free_local");
    reg.add(cp::kMidPushGlobal, "slab.mid_push_global",
            "SlabHeap::push_global_one");
    reg.add(cp::kMidHugeAlloc, "huge.mid_alloc", "HugeHeap::allocate");
    reg.add(cp::kMidHugeMap, "huge.mid_map", "HugeHeap::map_region");
    reg.add(cp::kMidHugeFree, "huge.mid_free", "HugeHeap::deallocate");
    reg.add(cp::kMidAlloc, "slab.mid_alloc", "SlabHeap::allocate");
    reg.add(cp::kMidBatchStage, "slab.mid_batch_stage",
            "SlabHeap::deallocate_batch");
    reg.add(cp::kMidBatchDoorbell, "slab.mid_batch_doorbell",
            "SlabHeap::deallocate_batch");
    reg.add(cp::kMidBatchDrain, "slab.mid_batch_drain",
            "SlabHeap::deallocate_batch");
}

const char*
to_string(Op op)
{
    switch (op) {
      case Op::None:
        return "none";
      case Op::Alloc:
        return "alloc";
      case Op::Init:
        return "init";
      case Op::PopGlobal:
        return "pop-global";
      case Op::Extend:
        return "extend";
      case Op::Detach:
        return "detach";
      case Op::Disown:
        return "disown";
      case Op::FreeLocal:
        return "free-local";
      case Op::FreeRemote:
        return "free-remote";
      case Op::PushGlobal:
        return "push-global";
      case Op::HugeReserve:
        return "huge-reserve";
      case Op::HugeAlloc:
        return "huge-alloc";
      case Op::HugeFree:
        return "huge-free";
      case Op::FreeRemoteBatch:
        return "free-remote-batch";
      case Op::CellPublish:
        return "cell-publish";
    }
    return "?";
}

std::uint64_t
OpRecord::pack() const
{
    CXL_ASSERT(aux <= kAuxMask, "record aux overflows 12 bits");
    CXL_ASSERT(version < (1u << 15), "record version overflows 15 bits");
    std::uint64_t aux13 =
        (static_cast<std::uint64_t>(large_heap) << 12) | aux;
    return (static_cast<std::uint64_t>(index) << 32) |
           (static_cast<std::uint64_t>(version) << 17) | (aux13 << 4) |
           static_cast<std::uint64_t>(op);
}

OpRecord
OpRecord::unpack(std::uint64_t word)
{
    OpRecord r;
    r.op = static_cast<Op>(word & 0xf);
    std::uint64_t aux13 = (word >> 4) & 0x1fff;
    r.large_heap = (aux13 >> 12) & 1;
    r.aux = static_cast<std::uint16_t>(aux13 & kAuxMask);
    r.version = static_cast<std::uint16_t>((word >> 17) & 0x7fff);
    r.index = static_cast<std::uint32_t>(word >> 32);
    return r;
}

} // namespace cxlalloc
