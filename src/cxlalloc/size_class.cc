#include "cxlalloc/size_class.h"

#include <array>

#include "common/assert.h"

namespace cxlalloc {

namespace {

// 8..64 by 8, then a coarse geometric ladder to 1024. Internal fragmentation
// stays below ~25% while keeping per-thread free-list arrays small.
constexpr std::array<std::uint64_t, kNumSmallClasses> kSmallSizes = {
    8,   16,  24,  32,  40,  48,  56,  64,  80,  96,  112, 128,
    160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024,
};

// 1.5 KiB .. 512 KiB: alternating x1.33/x1.5 ladder.
constexpr std::array<std::uint64_t, kNumLargeClasses> kLargeSizes = {
    1536,   2048,   3072,   4096,   6144,   8192,
    12288,  16384,  24576,  32768,  49152,  65536,
    98304,  131072, 196608, 262144, 393216, 524288,
};

} // namespace

std::uint64_t
small_class_size(std::uint32_t cls)
{
    CXL_ASSERT(cls < kNumSmallClasses, "small class out of range");
    return kSmallSizes[cls];
}

std::uint64_t
large_class_size(std::uint32_t cls)
{
    CXL_ASSERT(cls < kNumLargeClasses, "large class out of range");
    return kLargeSizes[cls];
}

std::uint32_t
small_class_for(std::uint64_t size)
{
    CXL_ASSERT(size > 0 && size <= kSmallMax, "size not in small range");
    for (std::uint32_t cls = 0; cls < kNumSmallClasses; cls++) {
        if (kSmallSizes[cls] >= size) {
            return cls;
        }
    }
    CXL_PANIC("unreachable: kSmallSizes ends at kSmallMax");
}

std::uint32_t
large_class_for(std::uint64_t size)
{
    CXL_ASSERT(size > kSmallMax && size <= kLargeMax,
               "size not in large range");
    for (std::uint32_t cls = 0; cls < kNumLargeClasses; cls++) {
        if (kLargeSizes[cls] >= size) {
            return cls;
        }
    }
    CXL_PANIC("unreachable: kLargeSizes ends at kLargeMax");
}

} // namespace cxlalloc
