/// @file
/// Size classes for the small and large heaps (paper §3.1: small heap
/// serves 8 B-1 KiB from 32 KiB slabs; large heap serves 1 KiB-512 KiB from
/// 512 KiB slabs; anything bigger goes to the huge heap).

#pragma once

#include <cstdint>

namespace cxlalloc {

/// Slab geometry shared across the library.
inline constexpr std::uint64_t kSmallSlabSize = 32 << 10;
inline constexpr std::uint64_t kLargeSlabSize = 512 << 10;
inline constexpr std::uint64_t kSmallMax = 1 << 10;   ///< largest small block
inline constexpr std::uint64_t kLargeMax = 512 << 10; ///< largest large block
inline constexpr std::uint64_t kMinAlloc = 8;

/// Number of small size classes (8,16,...,64 by 8; then a 1.25x-ish ladder
/// up to 1024).
inline constexpr std::uint32_t kNumSmallClasses = 24;

/// Number of large size classes (1.5 KiB..512 KiB, x1.5/x1.33 ladder).
inline constexpr std::uint32_t kNumLargeClasses = 18;

/// The larger of the two, used to size per-thread free-list arrays.
inline constexpr std::uint32_t kMaxClassesPerHeap = 24;

/// Block size of small class @p cls.
std::uint64_t small_class_size(std::uint32_t cls);

/// Block size of large class @p cls.
std::uint64_t large_class_size(std::uint32_t cls);

/// Smallest small class whose block size >= @p size. @p size must be in
/// (0, kSmallMax].
std::uint32_t small_class_for(std::uint64_t size);

/// Smallest large class whose block size >= @p size. @p size must be in
/// (kSmallMax, kLargeMax].
std::uint32_t large_class_for(std::uint64_t size);

/// Blocks per small slab for class @p cls.
inline std::uint64_t
small_blocks_per_slab(std::uint32_t cls)
{
    return kSmallSlabSize / small_class_size(cls);
}

/// Blocks per large slab for class @p cls.
inline std::uint64_t
large_blocks_per_slab(std::uint32_t cls)
{
    return kLargeSlabSize / large_class_size(cls);
}

} // namespace cxlalloc
