/// @file
/// Shared-memory layout of the cxlalloc heap (paper Fig. 2).
///
/// Two properties drive the layout:
///  1. HWcc metadata is minimized and packed into its own contiguous region
///     at the front of the device so that limited-HWcc (or device-biased
///     mCAS) configurations only need coherence over a small prefix
///     (paper §3.2).
///  2. All-zero memory is a valid, empty heap (paper §4): every list link
///     uses the OptIndex +1 bias, thread id 0 means "no owner", length 0
///     means "no slabs", and the huge descriptor "allocated" flag is
///     0 = free. No process ever runs an initialization step; the first
///     allocation finds a consistent empty heap.
///
/// Every process computes this layout from the same Config, so a heap
/// offset names the same object everywhere (PC-S by construction).

#pragma once

#include <cstdint>

#include "cxl/device.h"
#include "cxl/types.h"
#include "cxlalloc/size_class.h"

namespace cxlalloc {

using cxl::HeapOffset;

/// User-tunable heap geometry.
struct Config {
    /// Capacity of the small heap in 32 KiB slabs.
    std::uint32_t small_slabs = 2048; // 64 MiB of small data

    /// Capacity of the large heap in 512 KiB slabs.
    std::uint32_t large_slabs = 128; // 64 MiB of large data

    /// Number of coarse-grained huge-heap virtual address regions tracked
    /// by the reservation array (paper HugeGlobal.reservations).
    std::uint32_t huge_regions = 64;

    /// Bytes per huge region. One region backs one or more huge
    /// allocations (>= 512 KiB each).
    std::uint64_t huge_region_size = 8ULL << 20; // 512 MiB of huge space

    /// Huge descriptors available per thread.
    std::uint32_t huge_descs_per_thread = 128;

    /// Hazard offset slots per thread (bounds mappings held concurrently).
    std::uint32_t hazard_slots_per_thread = 16;

    /// When false, the cxlalloc-nonrecoverable ablation: recovery records
    /// are not written and plain CAS replaces detectable CAS (paper §5.2).
    bool recoverable = true;

    /// Thread-local unsized free lists longer than this spill slabs to the
    /// global free list ("configurable threshold length", paper §3.1.1).
    std::uint32_t unsized_limit = 4;

    /// Bytes of application HWcc space carved out at the tail of the sync
    /// region (app_sync()): reference cells and other words the app needs
    /// plain atomics/CAS on under PartialHwcc/NoHwcc. 0 (the default)
    /// keeps the layout byte-identical to pre-tiering configs.
    std::uint64_t app_sync_bytes = 0;

    /// Tiering policy (PodShardedAllocator only; ignored by a single
    /// heap): percentage of eligible allocations the stride scheduler
    /// steers to the host's local-DRAM shard when the topology has one.
    /// 0 (the default) disables the DRAM tier even on tiered topologies.
    std::uint32_t dram_percent = 0;

    /// Largest allocation the tiering policy places in DRAM; bigger
    /// requests always go to the CXL tier. 0 means "small heap only"
    /// (kSmallMax).
    std::uint64_t dram_max_block = 0;

    /// Device offset the layout starts at (page-aligned). 0 is the legacy
    /// whole-device heap; a pod shard sets this to its device window's
    /// base so every derived offset carries the window's device id in its
    /// high bits (PC-S still holds: all processes compute the same
    /// layout from the same Config).
    HeapOffset base = 0;
};

/// Slab descriptor geometry (SWccDesc, paper Fig. 3). Field offsets within
/// one descriptor:
///   +0  next   u32  (OptIndex raw: intrusive free-list link)
///   +4  owner  u16  (ThreadId; 0 = no owner)
///   +6  class  u8   (size class + 1; 0 = none)
///   +7  state  u8   (SlabState; 0 = Unmapped)
///   +8  hint   u16  (first possibly-nonempty bitset word)
///   +10 free   u16  (owner-maintained count of set bitset bits; makes
///        full/empty transition checks O(1) instead of O(words). Zeroed
///        memory is still a valid empty heap: 0 free blocks matches an
///        all-zero bitset. Rebuilt from the bitset by crash recovery.)
///   +16 free bitset (u64 words; bit set = block free)
struct DescField {
    static constexpr std::uint64_t kNext = 0;
    static constexpr std::uint64_t kOwner = 4;
    static constexpr std::uint64_t kClass = 6;
    static constexpr std::uint64_t kState = 7;
    static constexpr std::uint64_t kHint = 8;
    static constexpr std::uint64_t kFree = 10;
    static constexpr std::uint64_t kBitset = 16;
};

/// Life-cycle states of a slab (paper Fig. 4). Stored in SWcc metadata by
/// the owner; 0 must be the state of a never-used (zeroed) descriptor.
enum class SlabState : std::uint8_t {
    Unmapped = 0,  ///< past the heap length
    Global = 1,    ///< on the global free list (no owner)
    TlUnsized = 2, ///< on the owner's unsized free list
    TlSized = 3,   ///< on the owner's sized free list (non-full)
    Detached = 4,  ///< full, owned, unlinked
    Disowned = 5,  ///< full of remote frees, unowned, unlinked
};

const char* to_string(SlabState s);

/// Huge descriptor geometry (paper Fig. 5 HugeDesc). 32 bytes:
///   +0  next   u32 (OptIndex raw: link in the owner's descriptor list)
///   +4  flags  u32 (bit0: allocated, bit1: free-requested)
///   +8  offset u64 (start of the backing mapping, device offset)
///   +16 size   u64 (mapping length in bytes)
///   +24 pad
struct HugeDescField {
    static constexpr std::uint64_t kNext = 0;
    static constexpr std::uint64_t kFlags = 4;
    static constexpr std::uint64_t kOffset = 8;
    static constexpr std::uint64_t kSize = 16;
    static constexpr std::uint64_t kStride = 32;

    static constexpr std::uint32_t kFlagAllocated = 1u << 0;
    static constexpr std::uint32_t kFlagFree = 1u << 1;
};

/// All heap offsets, derived deterministically from a Config.
class Layout {
  public:
    explicit Layout(const Config& config);

    const Config& config() const { return config_; }

    /// First device offset of the layout (Config::base).
    HeapOffset base() const { return config_.base; }

    /// Device configuration that fits this layout: total size and the sync
    /// (HWcc / device-biased) region size, both relative to base() (a
    /// based layout describes one window of a pod device, whose sync
    /// prefix is per-window).
    cxl::DeviceConfig
    device_config(cxl::CoherenceMode mode, bool simulate_cache = false) const;

    // ---- HWcc region ----

    /// Detectable-CAS help array entry for @p tid.
    HeapOffset help_array() const { return help_array_; }

    /// Small heap length (detectable-CAS word; value = number of slabs).
    HeapOffset small_len() const { return small_global_; }
    /// Small heap global free list head (dcas word; value = OptIndex raw).
    HeapOffset small_free() const { return small_global_ + 8; }
    HeapOffset large_len() const { return large_global_; }
    HeapOffset large_free() const { return large_global_ + 8; }

    /// Huge reservation array entry @p region (dcas word; value = owner
    /// ThreadId, 0 = unclaimed).
    HeapOffset
    huge_reservation(std::uint32_t region) const
    {
        return huge_reservations_ + static_cast<HeapOffset>(region) * 8;
    }

    /// Per-slab HWcc descriptor (dcas word; value = remote-free
    /// down-counter) — the paper's HWccDesc.remote, widened to 8 B by the
    /// detectable-CAS tag (§3.4.2).
    HeapOffset
    small_hwcc_desc(std::uint32_t slab) const
    {
        return small_hwcc_desc_ + static_cast<HeapOffset>(slab) * 8;
    }

    HeapOffset
    large_hwcc_desc(std::uint32_t slab) const
    {
        return large_hwcc_desc_ + static_cast<HeapOffset>(slab) * 8;
    }

    /// Application HWcc space (Config::app_sync_bytes; reference cells the
    /// app CASes). Equals hwcc_end() when none was requested.
    HeapOffset app_sync() const { return app_sync_; }

    /// End of the HWcc region; hwcc_end() - base() = required
    /// sync_region_size.
    HeapOffset hwcc_end() const { return hwcc_end_; }

    /// Total bytes of HWcc memory this layout consumes (the paper's "HWcc
    /// memory" metric, §5.2.1).
    std::uint64_t hwcc_bytes() const { return hwcc_end_ - config_.base; }

    // ---- SWcc metadata ----

    /// Per-thread recovery row (64 B): +0 the 8-byte operation record.
    HeapOffset
    recovery_row(cxl::ThreadId tid) const
    {
        return recovery_rows_ + static_cast<HeapOffset>(tid) * 64;
    }

    /// Per-thread SmallLocal: +0 unsized head (u32 raw), +4 sized heads
    /// (u32 raw each, indexed by class).
    HeapOffset
    small_local(cxl::ThreadId tid) const
    {
        return small_local_ + static_cast<HeapOffset>(tid) * kLocalStride;
    }

    HeapOffset
    large_local(cxl::ThreadId tid) const
    {
        return large_local_ + static_cast<HeapOffset>(tid) * kLocalStride;
    }

    /// Per-thread HugeLocal: +0 descriptor list head (u32 OptIndex raw).
    HeapOffset
    huge_local(cxl::ThreadId tid) const
    {
        return huge_local_ + static_cast<HeapOffset>(tid) * 64;
    }

    /// Hazard offset table base (see cxlsync::HazardOffsets).
    HeapOffset hazard_table() const { return hazard_table_; }

    /// SWcc descriptor of small slab @p slab.
    HeapOffset
    small_swcc_desc(std::uint32_t slab) const
    {
        return small_swcc_desc_ +
               static_cast<HeapOffset>(slab) * kSmallDescStride;
    }

    HeapOffset
    large_swcc_desc(std::uint32_t slab) const
    {
        return large_swcc_desc_ +
               static_cast<HeapOffset>(slab) * kLargeDescStride;
    }

    /// Huge descriptor @p index (global index; thread t owns indices
    /// [t * descs_per_thread, (t+1) * descs_per_thread)).
    HeapOffset
    huge_desc(std::uint32_t index) const
    {
        return huge_desc_pool_ +
               static_cast<HeapOffset>(index) * HugeDescField::kStride;
    }

    std::uint32_t
    huge_desc_count() const
    {
        return (cxl::kMaxThreads + 1) * config_.huge_descs_per_thread;
    }

    // ---- Data regions ----

    HeapOffset small_data() const { return small_data_; }
    HeapOffset large_data() const { return large_data_; }
    HeapOffset huge_data() const { return huge_data_; }
    HeapOffset end() const { return end_; }

    HeapOffset
    small_slab_data(std::uint32_t slab) const
    {
        return small_data_ + static_cast<HeapOffset>(slab) * kSmallSlabSize;
    }

    HeapOffset
    large_slab_data(std::uint32_t slab) const
    {
        return large_data_ + static_cast<HeapOffset>(slab) * kLargeSlabSize;
    }

    HeapOffset
    huge_region_data(std::uint32_t region) const
    {
        return huge_data_ +
               static_cast<HeapOffset>(region) * config_.huge_region_size;
    }

    /// True if @p offset lies in the small (resp. large, huge) data region.
    bool in_small_data(HeapOffset offset) const
    {
        return offset >= small_data_ && offset < large_data_;
    }
    bool in_large_data(HeapOffset offset) const
    {
        return offset >= large_data_ && offset < huge_data_;
    }
    bool in_huge_data(HeapOffset offset) const
    {
        return offset >= huge_data_ && offset < end_;
    }

    /// Stride of one per-thread local row (shared by small/large locals).
    static constexpr HeapOffset kLocalStride = 128;

    /// SWcc descriptor strides: header (16 B) + free bitset.
    static constexpr HeapOffset kSmallDescStride = 576; // 16 + 512, 64-align
    static constexpr HeapOffset kLargeDescStride = 64;  // 16 + 48

  private:
    Config config_;

    HeapOffset help_array_;
    HeapOffset small_global_;
    HeapOffset large_global_;
    HeapOffset huge_reservations_;
    HeapOffset small_hwcc_desc_;
    HeapOffset large_hwcc_desc_;
    HeapOffset app_sync_;
    HeapOffset hwcc_end_;

    HeapOffset recovery_rows_;
    HeapOffset small_local_;
    HeapOffset large_local_;
    HeapOffset huge_local_;
    HeapOffset hazard_table_;
    HeapOffset small_swcc_desc_;
    HeapOffset large_swcc_desc_;
    HeapOffset huge_desc_pool_;

    HeapOffset small_data_;
    HeapOffset large_data_;
    HeapOffset huge_data_;
    HeapOffset end_;
};

} // namespace cxlalloc
