/// @file
/// CxlAllocator: the public API of the cxlalloc reproduction.
///
/// One CxlAllocator instance manages one shared heap on one pod. Each
/// sharing process calls attach() once; each thread allocates and frees
/// through its pod::ThreadContext. Pointers are HeapOffsets (offset
/// pointers, §2.3): stable across processes (PC-S), dereferenceable
/// immediately in any attached process (PC-T via the fault handler).
///
/// Usage sketch:
///     pod::Pod pod(...);
///     cxlalloc::CxlAllocator heap(pod, cxlalloc::Config{});
///     auto* proc = pod.create_process();
///     heap.attach(*proc);
///     auto thread = pod.create_thread(proc);
///     cxl::HeapOffset p = heap.allocate(*thread, 64);
///     std::byte* data = heap.pointer(*thread, p, 64);
///     heap.deallocate(*thread, p);

#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "cxlalloc/huge_heap.h"
#include "cxlalloc/layout.h"
#include "cxlalloc/recovery.h"
#include "cxlalloc/slab_heap.h"
#include "cxlalloc/thread_state.h"
#include "obs/registry.h"
#include "pod/fault_handler.h"
#include "pod/pod.h"

namespace cxlalloc {

/// The cxlalloc memory allocator.
class CxlAllocator : public pod::FaultResolver {
  public:
    /// Binds the allocator to @p pod's device. The device must have been
    /// sized with Layout::device_config (or larger). No initialization of
    /// heap memory happens here or ever: zeroed memory is a valid heap
    /// (paper §4), so processes need no bootstrap coordination.
    CxlAllocator(pod::Pod& pod, const Config& config);

    /// Per-process setup: registers virtual-address-space reservations
    /// (PC-S), installs the fault resolver (PC-T), and eagerly maps the
    /// fixed metadata regions.
    void attach(pod::Process& process);

    /// Per-thread setup: rebuilds the thread's volatile state from shared
    /// metadata. Must be called once per ThreadContext before use (done
    /// automatically on first allocate, but explicit is cheaper to reason
    /// about in tests).
    void attach_thread(pod::ThreadContext& ctx);

    /// Allocates @p size bytes; returns the heap offset or 0 on
    /// exhaustion. Routes to the small (<= 1 KiB), large (<= 512 KiB) or
    /// huge heap.
    cxl::HeapOffset allocate(pod::ThreadContext& ctx, std::uint64_t size);

    /// Frees an allocation by offset (any attached thread/process).
    void deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset);

    /// Frees @p n allocations in one drain. Semantically equal to n
    /// deallocate() calls; under NoHwcc the slab heaps submit remote-free
    /// decrements of distinct slabs as batched NMP doorbells — one device
    /// round trip per ring instead of one per free (§4). Huge frees and
    /// everything under HWcc modes take the serial paths unchanged.
    void deallocate_batch(pod::ThreadContext& ctx,
                          const cxl::HeapOffset* offsets, std::uint32_t n);

    /// Resolves an offset to a pointer in this process, enforcing PC-T
    /// (faults in the mapping if needed).
    std::byte*
    pointer(pod::ThreadContext& ctx, cxl::HeapOffset offset,
            std::uint64_t len)
    {
        return ctx.mem().data_ptr(offset, len);
    }

    /// Recovers the crashed thread slot that @p ctx adopted: idempotently
    /// redoes its interrupted operation and rebuilds volatile state.
    /// Non-blocking: live threads keep allocating throughout.
    void recover(pod::ThreadContext& ctx);

    /// The operation recorded in the adopted slot's recovery record,
    /// without redoing anything. Pod-sharded recovery uses this to order
    /// shard recovery: the (at most one) shard with an interrupted NMP
    /// batch must recover before any other shard resets the thread's ring.
    Op pending_op(pod::ThreadContext& ctx);

    /// The adopted slot's full recovery record, without redoing anything.
    /// Migration recovery snapshots every shard's record BEFORE shard
    /// recovery clears them, then uses the snapshot to tell "block handed
    /// to the interrupted migration" (Op::Alloc on the target shard) and
    /// "free already redone" (a free-type op on the freeing shard) apart.
    OpRecord pending_record(pod::ThreadContext& ctx);

    /// Durably clears the calling thread's recovery record (store + flush
    /// + fence). The migrator quiesces a shard's record before a stage
    /// whose recovery inspects it, so a stale record of an earlier
    /// completed operation can never be misattributed to the migration.
    void quiesce_record(pod::ThreadContext& ctx);

    /// Publishes a detectable CAS on an application reference cell: logs
    /// an Op::CellPublish record for a fresh version (durable before the
    /// CAS, as the version-resume discipline requires), then makes one
    /// try_cas attempt on the 32-bit value at @p cell. The cell must be a
    /// word in HWcc memory (Layout::app_sync() or other sync space).
    cxlsync::DetectableCas::Result
    cell_publish(pod::ThreadContext& ctx, cxl::HeapOffset cell,
                 std::uint32_t expected, std::uint32_t desired);

    /// The logging half of cell_publish: consumes and durably records a
    /// fresh CAS version without performing the CAS. The migrator uses
    /// this to persist the version into its own migration record between
    /// the log and the CAS (see cxlalloc/migrate.h).
    std::uint16_t log_cell_publish(pod::ThreadContext& ctx);

    /// The detectable-CAS instance of this heap (help array in this
    /// heap's window). For migration publish/did_succeed on cells this
    /// heap's layout owns.
    cxlsync::DetectableCas& dcas() { return dcas_; }

    /// Data offset of the block a (completed) slab Alloc/FreeLocal record
    /// names: slab index + block index + the slab's current class. Only
    /// meaningful while the slab still carries the class the record's
    /// operation ran under (migration recovery reads it before any reuse).
    cxl::HeapOffset record_block_offset(cxl::MemSession& mem,
                                        const OpRecord& record);

    /// Runs the huge heap's asynchronous reclamation pass for this thread.
    void cleanup(pod::ThreadContext& ctx);

    /// Runtime invariant checks (paper §5.1). Requires quiescence.
    void check_invariants(cxl::MemSession& mem);
    void check_local_invariants(cxl::MemSession& mem);

    /// Aggregate statistics.
    struct Stats {
        SlabHeap::Stats small;
        SlabHeap::Stats large;
        HugeHeap::Stats huge;
        /// Bytes of HWcc memory the layout consumes (paper §5.2.1 metric).
        std::uint64_t hwcc_bytes = 0;
        /// Committed device bytes (PSS analog).
        std::uint64_t committed_bytes = 0;
    };

    Stats stats(cxl::MemSession& mem);

    /// Enables op counters ("alloc.*"), alloc/free/remote-free latency
    /// histograms, and per-op tracing, sharded by thread id in
    /// @p registry. nullptr (the default) disables instrumentation; the
    /// disabled hot path costs a single branch on a member pointer.
    void set_metrics(obs::MetricsRegistry* registry);

    const Layout& layout() const { return layout_; }
    const Config& config() const { return layout_.config(); }

    /// pod::FaultResolver: the signal-handler body (paper §3.3).
    bool resolve_fault(pod::Process& process, cxl::MemSession& mem,
                       cxl::HeapOffset offset,
                       pod::MappedRange* out) override;

    /// Per-thread volatile state (exposed for tests).
    ThreadState& thread_state(cxl::ThreadId tid);

    /// Heap internals (exposed for tests: counter/bitset cross-checks).
    SlabHeap& small_heap() { return small_; }
    SlabHeap& large_heap() { return large_; }

  private:
    ThreadState& state_of(pod::ThreadContext& ctx);

    cxl::HeapOffset allocate_impl(pod::ThreadContext& ctx,
                                  std::uint64_t size);

    /// Resolved metric ids; valid only while registry != nullptr.
    struct Instruments {
        obs::MetricsRegistry* registry = nullptr;
        obs::MetricId alloc_small = obs::kInvalidMetric;
        obs::MetricId alloc_large = obs::kInvalidMetric;
        obs::MetricId alloc_huge = obs::kInvalidMetric;
        obs::MetricId alloc_failures = obs::kInvalidMetric;
        obs::MetricId free_local = obs::kInvalidMetric;
        obs::MetricId free_remote = obs::kInvalidMetric;
        obs::MetricId free_huge = obs::kInvalidMetric;
        obs::MetricId free_batches = obs::kInvalidMetric;
        obs::MetricId free_batch_ns = obs::kInvalidMetric;
        obs::MetricId recoveries = obs::kInvalidMetric;
        obs::MetricId cleanups = obs::kInvalidMetric;
        obs::MetricId alloc_ns = obs::kInvalidMetric;
        obs::MetricId free_ns = obs::kInvalidMetric;
        obs::MetricId remote_free_ns = obs::kInvalidMetric;
        obs::MetricId op_alloc = obs::kInvalidMetric;
        obs::MetricId op_free = obs::kInvalidMetric;
    };

    pod::Pod& pod_;
    Layout layout_;
    cxlsync::DetectableCas dcas_;
    RecoveryLog log_;
    SlabHeap small_;
    SlabHeap large_;
    HugeHeap huge_;

    struct PerThread {
        ThreadState state;
        bool attached = false;
    };

    std::array<PerThread, cxl::kMaxThreads + 1> threads_{};
    Instruments inst_;
};

} // namespace cxlalloc
