#include "cxlalloc/c_api.h"

#include <memory>

#include "common/assert.h"
#include "cxlalloc/allocator.h"
#include "pod/pod.h"

/// Opaque handle bodies.
struct cxlalloc_pod {
    explicit cxlalloc_pod(const cxlalloc::Config& config,
                          const pod::PodConfig& pod_config)
        : pod(pod_config), heap(pod, config)
    {
    }

    pod::Pod pod;
    cxlalloc::CxlAllocator heap;
};

struct cxlalloc_process {
    cxlalloc_pod* owner = nullptr;
    pod::Process* process = nullptr;
};

namespace {

/// The calling thread's binding.
struct ThreadBinding {
    cxlalloc_pod* pod = nullptr;
    std::unique_ptr<pod::ThreadContext> ctx;
};

thread_local ThreadBinding tls_binding;

cxlalloc::Config
config_from(const cxlalloc_options_t* options)
{
    cxlalloc::Config cfg;
    if (options == nullptr) {
        return cfg;
    }
    if (options->small_slabs != 0) {
        cfg.small_slabs = options->small_slabs;
    }
    if (options->large_slabs != 0) {
        cfg.large_slabs = options->large_slabs;
    }
    if (options->huge_regions != 0) {
        cfg.huge_regions = options->huge_regions;
    }
    if (options->huge_region_size != 0) {
        cfg.huge_region_size = options->huge_region_size;
    }
    cfg.recoverable = options->nonrecoverable == 0;
    return cfg;
}

} // namespace

extern "C" {

cxlalloc_pod_t*
cxlalloc_pod_create(const cxlalloc_options_t* options)
{
    cxlalloc::Config cfg = config_from(options);
    cxl::CoherenceMode mode = cxl::CoherenceMode::PartialHwcc;
    if (options != nullptr) {
        switch (options->coherence) {
          case 0:
            mode = cxl::CoherenceMode::FullHwcc;
            break;
          case 1:
            mode = cxl::CoherenceMode::PartialHwcc;
            break;
          case 2:
            mode = cxl::CoherenceMode::NoHwcc;
            break;
          default:
            return nullptr;
        }
    }
    pod::PodConfig pc;
    pc.device = cxlalloc::Layout(cfg).device_config(mode);
    pc.checked_mappings =
        options != nullptr && options->checked_mappings != 0;
    return new cxlalloc_pod(cfg, pc);
}

void
cxlalloc_pod_destroy(cxlalloc_pod_t* pod)
{
    delete pod;
}

cxlalloc_process_t*
cxlalloc_process_attach(cxlalloc_pod_t* pod)
{
    if (pod == nullptr) {
        return nullptr;
    }
    auto* handle = new cxlalloc_process;
    handle->owner = pod;
    handle->process = pod->pod.create_process();
    pod->heap.attach(*handle->process);
    return handle;
}

void
cxlalloc_process_detach(cxlalloc_process_t* process)
{
    delete process;
}

uint16_t
cxlalloc_thread_bind(cxlalloc_process_t* process)
{
    if (process == nullptr || tls_binding.ctx != nullptr) {
        return 0;
    }
    tls_binding.pod = process->owner;
    tls_binding.ctx = process->owner->pod.create_thread(process->process);
    process->owner->heap.attach_thread(*tls_binding.ctx);
    return tls_binding.ctx->tid();
}

void
cxlalloc_thread_unbind(void)
{
    if (tls_binding.ctx == nullptr) {
        return;
    }
    tls_binding.pod->pod.release_thread(std::move(tls_binding.ctx));
    tls_binding = ThreadBinding{};
}

uint16_t
cxlalloc_thread_adopt(cxlalloc_process_t* process, uint16_t tid)
{
    if (process == nullptr || tls_binding.ctx != nullptr ||
        process->owner->pod.slot_state(tid) != pod::SlotState::Crashed) {
        return 0;
    }
    tls_binding.pod = process->owner;
    tls_binding.ctx =
        process->owner->pod.adopt_thread(process->process, tid);
    process->owner->heap.recover(*tls_binding.ctx);
    return tid;
}

uint64_t
cxlalloc_malloc(size_t size)
{
    if (tls_binding.ctx == nullptr || size == 0) {
        return 0;
    }
    return tls_binding.pod->heap.allocate(*tls_binding.ctx, size);
}

void
cxlalloc_free(uint64_t offset)
{
    CXL_FATAL_IF(tls_binding.ctx == nullptr,
                 "cxlalloc_free from unbound thread");
    tls_binding.pod->heap.deallocate(*tls_binding.ctx, offset);
}

void*
cxlalloc_ptr(uint64_t offset, size_t len)
{
    CXL_FATAL_IF(tls_binding.ctx == nullptr,
                 "cxlalloc_ptr from unbound thread");
    return tls_binding.pod->heap.pointer(*tls_binding.ctx, offset, len);
}

void
cxlalloc_maintain(void)
{
    if (tls_binding.ctx != nullptr) {
        tls_binding.pod->heap.cleanup(*tls_binding.ctx);
    }
}

int
cxlalloc_stats_get(cxlalloc_stats_t* out)
{
    if (tls_binding.ctx == nullptr || out == nullptr) {
        return -1;
    }
    auto stats = tls_binding.pod->heap.stats(tls_binding.ctx->mem());
    out->committed_bytes = stats.committed_bytes;
    out->hwcc_bytes = stats.hwcc_bytes;
    out->small_slabs_used = stats.small.length;
    out->large_slabs_used = stats.large.length;
    out->huge_live = stats.huge.live_allocations;
    return 0;
}

} // extern "C"
