/// @file
/// Background hot/cold slab migration between the CXL and local-DRAM
/// tiers of a pod-sharded heap (see docs/ARCHITECTURE.md, tiering
/// section).
///
/// Heat is tracked per small slab: the application calls note_access()
/// per object access — one relaxed host-side counter bump, no shared
/// traffic — and the migrator samples and decays the counts at epoch
/// boundaries (run_epoch). Hot CXL-resident objects are promoted into the
/// host's private DRAM window; cold DRAM residents are demoted back to
/// the host's CXL home shard.
///
/// Objects are reachable through application reference cells: detectable-
/// CAS words (Layout::app_sync()) whose 32-bit value is the object's heap
/// offset >> 3. Migration is alloc-on-target + copy + detectable-CAS
/// publish + free-of-the-loser, made crash-consistent by a durable
/// 5-stage migration record kept in the spare bytes of the cell shard's
/// per-thread recovery row (the allocator's 8-byte operation record uses
/// byte 0..7 of the 64-byte row; the migration record uses +8..+47, so no
/// layout change and the whole record shares one flushable line):
///
///   Idle -> Armed(cell, old, target)    durable before the target alloc
///        -> Copied(+new)                durable before payload copy
///        -> Publish(+version)           durable before the cell CAS
///        -> Free(+which block loses)    durable before the loser's free
///        -> Idle
///
/// Stage ordering rules (copy -> publish -> reclaim):
///  - The target block is COPIED and flushed before the publish record,
///    and published before either block is freed: readers that win the
///    CAS race see a fully-written copy, and a crash anywhere leaves at
///    least one intact copy of the object.
///  - Record-quiesce discipline: the migrator durably CLEARS the target
///    (resp. freeing) shard's allocator record immediately before the
///    stage whose recovery must inspect it, so a stale record from an
///    earlier completed operation can never be misattributed:
///      * Armed recovery frees the target's leaked block iff the target
///        shard's snapshot record is Op::Alloc (the block allocate()
///        handed the dead migrator, reconstructed from the record).
///      * Free recovery re-issues the loser's free iff the freeing
///        shard's snapshot record is NOT a free-type op (else the free
///        already logged, and shard recovery's idempotent redo covers it
///        — re-freeing would double-free).
///  - The publish CAS consumes a detectable-CAS version of the cell
///    shard, logged as Op::CellPublish (CxlAllocator::log_cell_publish)
///    BEFORE the CAS, like every other version-consuming operation; the
///    version also lands in the migration record so Publish-stage
///    recovery can ask did_succeed() and free exactly the losing block.
///
/// recover() replaces PodShardedAllocator::recover for migrator-aware
/// applications: it snapshots every shard's allocator record, locates the
/// (at most one) in-flight migration record, runs normal shard recovery,
/// then drives the migration to completion by stage. Re-crashing during
/// recovery is covered: each recovery step re-enters the same stage
/// machine with refreshed snapshots.
///
/// When the topology has no DRAM tier the heat policy is inert: active()
/// is false and note_access()/run_epoch() are no-ops. The migration
/// *record machinery* stays live regardless, because evacuate_device()
/// reuses the same crash-consistent move protocol to pull still-reachable
/// blocks off a degrading CXL device (pod/faults.h) on any pod, tiered or
/// not — so recover() always sweeps for an in-flight migration record
/// before falling back to plain shard recovery.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "cxlalloc/pod_shard.h"

namespace cxlalloc {

/// Crash-injection points of the migration protocol (registered as
/// "migrate.*" so the recovery sweep and sched explorer iterate them by
/// name). Ids 30+ leave room below for allocator and app points.
namespace migratepoint {

inline constexpr int kAfterArm = 30;     ///< record armed, target not alloced
inline constexpr int kAfterAlloc = 31;   ///< target alloced, not recorded
inline constexpr int kAfterCopy = 32;    ///< payload copied, not published
inline constexpr int kAfterVersion = 33; ///< publish version durable, CAS not
inline constexpr int kAfterPublish = 34; ///< CAS issued, loser not freed
inline constexpr int kMidFree = 35;      ///< free staged, not performed

} // namespace migratepoint

/// Registers the migration crash points with pod::CrashPointRegistry
/// (idempotent; called by the HotSlabMigrator constructor).
void register_migrate_crash_points();

/// Epoch-driven hot/cold migrator over one PodShardedAllocator.
class HotSlabMigrator {
  public:
    struct Options {
        /// Decayed per-slab access count at or above which a CXL-resident
        /// object is promoted to DRAM.
        std::uint32_t promote_min_heat = 16;
        /// Count at or below which a DRAM resident is demoted back to CXL.
        std::uint32_t demote_max_heat = 1;
        /// Moves per run_epoch call (promotions + demotions).
        std::uint32_t max_moves_per_epoch = 128;
        /// Largest object the migrator moves.
        std::uint64_t max_block = kSmallMax;
    };

    explicit HotSlabMigrator(PodShardedAllocator& heap);
    HotSlabMigrator(PodShardedAllocator& heap, const Options& options);

    /// False when the pod topology has no DRAM tier; every mutating entry
    /// point is then a no-op.
    bool active() const { return active_; }

    /// Registers the application's reference-cell table: @p count
    /// detectable-CAS words starting at @p base (8-byte stride, HWcc
    /// memory). A cell's 32-bit value is the object offset >> 3; value 0
    /// means "no object".
    void set_cell_table(cxl::HeapOffset base, std::uint32_t count);

    /// Heat bump for one object access (any thread; relaxed, host-side
    /// only — the fast-path cost the tentpole budget allows).
    void
    note_access(cxl::HeapOffset offset)
    {
        if (!active_) {
            return;
        }
        cxl::DeviceId dev = pod_device_of_(offset);
        if (dev >= heat_.size() || heat_[dev].slabs == 0) {
            return;
        }
        const Layout& l = heap_.shard(dev).layout();
        if (!l.in_small_data(offset)) {
            return;
        }
        auto slab =
            static_cast<std::uint32_t>((offset - l.small_data()) /
                                       kSmallSlabSize);
        heat_[dev].counts[slab].fetch_add(1, std::memory_order_relaxed);
    }

    /// One migration epoch on the calling thread: samples the cell table,
    /// promotes hot CXL objects / demotes cold DRAM objects (bounded by
    /// Options::max_moves_per_epoch), then decays all heat counters.
    /// Returns the number of completed migrations.
    std::uint32_t run_epoch(pod::ThreadContext& ctx);

    /// Live evacuation (degraded-mode escape hatch, see pod/faults.h):
    /// moves every cell-reachable small block resident on @p source into
    /// shard @p target, one crash-consistent migrate_one per block (alloc
    /// on target + copy + detectable-CAS publish + free-loser, with the
    /// full durable record and crash points). Works on any pod — a DRAM
    /// tier is not required — but the calling thread must still reach
    /// @p source: evacuation drains a Suspect/degrading device while it
    /// answers, it cannot resurrect blocks behind an edge that is already
    /// Down. Blocks the app mutates mid-move lose the publish CAS and
    /// stay put (counted in aborted()). Returns the blocks moved.
    std::uint32_t evacuate_device(pod::ThreadContext& ctx,
                                  cxl::DeviceId source,
                                  cxl::DeviceId target);

    /// Post-adoption consolidation, the second half of host-death
    /// handling: after evacuate_device has pulled the dead host's device,
    /// the survivor is left freeing into slabs it does not own — storm
    /// traffic disowns slabs that fill while carrying remote frees, and
    /// every later free into a disowned slab costs a serial mCAS round
    /// trip. rehome() walks the cell table and re-allocates every block
    /// whose slab is off-target, foreign-owned, or carrying remote-free
    /// decrements (the last will disown itself at its next fill) into
    /// shard @p target through the same crash-consistent migrate_one
    /// protocol, so the survivor's steady-state free path is host-local
    /// again. Blocks already in clean ctx-owned slabs are left alone.
    /// Returns the blocks moved.
    std::uint32_t rehome(pod::ThreadContext& ctx, cxl::DeviceId target);

    /// Crash-consistent recovery of the slot @p ctx adopted, superseding
    /// PodShardedAllocator::recover (which it runs internally). See the
    /// file comment for the stage machine.
    void recover(pod::ThreadContext& ctx);

    /// Wires "migrate.*" counters into @p registry (nullptr disables).
    void set_metrics(obs::MetricsRegistry* registry);

    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t demotions() const { return demotions_; }
    /// Blocks moved by evacuate_device.
    std::uint64_t evacuations() const { return evacuations_; }
    /// Blocks pulled back into owned slabs by rehome().
    std::uint64_t rehomed() const { return rehomed_; }
    /// Migrations abandoned mid-flight (target tier full, or the cell
    /// changed under the publish CAS — the app won the race).
    std::uint64_t aborted() const { return aborted_; }

    /// Test hook: current decayed heat of (device, slab).
    std::uint32_t
    debug_heat(cxl::DeviceId device, std::uint32_t slab) const
    {
        return heat_[device].counts[slab].load(std::memory_order_relaxed);
    }

    /// Test hook: migrate the object in @p cell to @p target now, skipping
    /// the heat policy (drives the protocol deterministically).
    bool debug_migrate_cell(pod::ThreadContext& ctx, cxl::HeapOffset cell,
                            cxl::DeviceId target);

  private:
    /// Durable migration-record field offsets within the cell shard's
    /// recovery row (row + 0..7 is the allocator's OpRecord).
    struct RowField {
        static constexpr std::uint64_t kStage = 8; ///< see pack_stage()
        static constexpr std::uint64_t kCell = 16;
        static constexpr std::uint64_t kOld = 24;
        static constexpr std::uint64_t kNew = 32;
        static constexpr std::uint64_t kVersion = 40;
    };

    enum class Stage : std::uint8_t {
        Idle = 0,
        Armed = 1,
        Copied = 2,
        Publish = 3,
        Free = 4,
    };

    /// Stage word: [ size:32 | pad:8 | free_new:8 | target:8 | stage:8 ].
    static std::uint64_t
    pack_stage(Stage stage, cxl::DeviceId target, bool free_new,
               std::uint32_t size)
    {
        return (static_cast<std::uint64_t>(size) << 32) |
               (static_cast<std::uint64_t>(free_new) << 16) |
               (static_cast<std::uint64_t>(target & 0xff) << 8) |
               static_cast<std::uint64_t>(stage);
    }

    cxl::DeviceId
    pod_device_of_(cxl::HeapOffset offset) const
    {
        return cxl::pod_device_of(offset, window_bits_);
    }

    /// One crash-consistent migration of the object in @p cell (currently
    /// at @p old_off, @p size bytes) into shard @p target.
    bool migrate_one(pod::ThreadContext& ctx, cxl::HeapOffset cell,
                     cxl::HeapOffset old_off, cxl::DeviceId target,
                     std::uint64_t size);

    /// The Free stage, shared by the live path and recovery: quiesce the
    /// freeing shard's record, durably enter Free, deallocate the loser.
    /// @p row is the migration record in the cell shard's recovery row.
    void free_loser(pod::ThreadContext& ctx, cxl::HeapOffset row,
                    cxl::DeviceId target, std::uint32_t size, bool free_new,
                    cxl::HeapOffset old_off, cxl::HeapOffset new_off);

    /// Durably writes the stage word of @p row.
    void write_stage(cxl::MemSession& mem, cxl::HeapOffset row,
                     std::uint64_t word);

    void clear_row(cxl::MemSession& mem, cxl::HeapOffset row);

    void bump(obs::MetricsRegistry* reg, cxl::ThreadId tid,
              obs::MetricId id, std::uint64_t n = 1);

    struct DeviceHeat {
        std::uint32_t slabs = 0;
        std::unique_ptr<std::atomic<std::uint32_t>[]> counts;
    };

    PodShardedAllocator& heap_;
    Options options_;
    bool active_ = false;
    std::uint32_t window_bits_ = 0;
    std::vector<DeviceHeat> heat_;
    cxl::HeapOffset cells_ = 0;
    std::uint32_t cell_count_ = 0;

    std::uint64_t promotions_ = 0;
    std::uint64_t demotions_ = 0;
    std::uint64_t aborted_ = 0;
    std::uint64_t evacuations_ = 0;
    std::uint64_t rehomed_ = 0;

    struct Instruments {
        obs::MetricsRegistry* registry = nullptr;
        obs::MetricId promotions = obs::kInvalidMetric;
        obs::MetricId demotions = obs::kInvalidMetric;
        obs::MetricId aborted = obs::kInvalidMetric;
        obs::MetricId epochs = obs::kInvalidMetric;
        obs::MetricId recoveries = obs::kInvalidMetric;
        obs::MetricId evacuations = obs::kInvalidMetric;
        obs::MetricId rehomed = obs::kInvalidMetric;
    };
    Instruments inst_;
};

} // namespace cxlalloc
