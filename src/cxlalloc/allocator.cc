#include "cxlalloc/allocator.h"

#include <vector>

#include "common/assert.h"
#include "obs/timer.h"
#include "pod/process.h"

namespace cxlalloc {

CxlAllocator::CxlAllocator(pod::Pod& pod, const Config& config)
    : pod_(pod), layout_(config),
      dcas_(layout_.help_array(), config.recoverable),
      log_(&layout_, config.recoverable),
      small_(&layout_, /*large=*/false, &dcas_, &log_),
      large_(&layout_, /*large=*/true, &dcas_, &log_),
      huge_(&layout_, &dcas_, &log_)
{
    register_crash_points();
    CXL_FATAL_IF(pod.device().size() < layout_.end(),
                 "device too small for heap layout");
    // With a based layout (a pod shard) the sync region is the per-window
    // prefix, so the requirement is base-relative either way.
    CXL_FATAL_IF(pod.device().mode() != cxl::CoherenceMode::FullHwcc &&
                     pod.device().config().sync_region_size <
                         layout_.hwcc_end() - layout_.base(),
                 "sync region too small for HWcc metadata");
    CXL_FATAL_IF(layout_.base() != 0 &&
                     (pod.device().device_of(layout_.base()) !=
                          pod.device().device_of(layout_.end() - 1) ||
                      layout_.base() !=
                          pod.device().window_base(
                              pod.device().device_of(layout_.base()))),
                 "based heap layout must exactly occupy one device window");
}

void
CxlAllocator::attach(pod::Process& process)
{
    // Virtual address space reservations (paper Fig. 2, grey regions):
    // carve out the offset ranges cxlalloc manages so nothing else in the
    // process can take them (PC-S).
    process.reserve("hwcc-metadata", layout_.base(),
                    layout_.hwcc_end() - layout_.base());
    process.reserve("swcc-metadata", layout_.hwcc_end(),
                    layout_.small_data() - layout_.hwcc_end());
    process.reserve("small-data", layout_.small_data(),
                    layout_.large_data() - layout_.small_data());
    process.reserve("large-data", layout_.large_data(),
                    layout_.huge_data() - layout_.large_data());
    process.reserve("huge-data", layout_.huge_data(),
                    layout_.end() - layout_.huge_data());
    process.set_resolver(this);

    // Fixed-size metadata is mapped eagerly; per-slab descriptors and all
    // data are mapped lazily (heap extension + fault handler).
    process.install_mapping(layout_.base(),
                            layout_.hwcc_end() - layout_.base());
    process.install_mapping(layout_.recovery_row(0),
                            layout_.small_local(0) - layout_.recovery_row(0));
    process.install_mapping(layout_.small_local(0),
                            layout_.small_swcc_desc(0) -
                                layout_.small_local(0));
    process.install_mapping(layout_.huge_desc(0),
                            layout_.huge_desc_count() *
                                HugeDescField::kStride);
}

void
CxlAllocator::attach_thread(pod::ThreadContext& ctx)
{
    PerThread& pt = threads_[ctx.tid()];
    pt.state = ThreadState{};
    huge_.rebuild_thread_state(ctx, pt.state);
    pt.attached = true;
}

ThreadState&
CxlAllocator::state_of(pod::ThreadContext& ctx)
{
    PerThread& pt = threads_[ctx.tid()];
    if (!pt.attached) {
        attach_thread(ctx);
    }
    return pt.state;
}

ThreadState&
CxlAllocator::thread_state(cxl::ThreadId tid)
{
    return threads_[tid].state;
}

void
CxlAllocator::set_metrics(obs::MetricsRegistry* registry)
{
    inst_ = Instruments{};
    inst_.registry = registry;
    small_.set_metrics(registry);
    large_.set_metrics(registry);
    if (registry == nullptr) {
        return;
    }
    inst_.alloc_small = registry->counter("alloc.small");
    inst_.alloc_large = registry->counter("alloc.large");
    inst_.alloc_huge = registry->counter("alloc.huge");
    inst_.alloc_failures = registry->counter("alloc.failures");
    inst_.free_local = registry->counter("alloc.free_local");
    inst_.free_remote = registry->counter("alloc.free_remote");
    inst_.free_huge = registry->counter("alloc.free_huge");
    inst_.free_batches = registry->counter("alloc.free_batches");
    inst_.free_batch_ns = registry->histogram("alloc.free_batch_ns");
    inst_.recoveries = registry->counter("alloc.recoveries");
    inst_.cleanups = registry->counter("alloc.cleanup_passes");
    inst_.alloc_ns = registry->histogram("alloc.alloc_ns");
    inst_.free_ns = registry->histogram("alloc.free_ns");
    inst_.remote_free_ns = registry->histogram("alloc.remote_free_ns");
    inst_.op_alloc = registry->op("alloc");
    inst_.op_free = registry->op("free");
}

cxl::HeapOffset
CxlAllocator::allocate_impl(pod::ThreadContext& ctx, std::uint64_t size)
{
    CXL_ASSERT(size > 0, "zero-size allocation");
    ThreadState& ts = state_of(ctx);
    if (size <= kSmallMax) {
        return small_.allocate(ctx, ts, size);
    }
    if (size <= kLargeMax) {
        return large_.allocate(ctx, ts, size);
    }
    return huge_.allocate(ctx, ts, size);
}

cxl::HeapOffset
CxlAllocator::allocate(pod::ThreadContext& ctx, std::uint64_t size)
{
    if (inst_.registry == nullptr) {
        return allocate_impl(ctx, size);
    }
    std::uint64_t t0 = obs::now_ns();
    cxl::HeapOffset off = allocate_impl(ctx, size);
    std::uint64_t dt = obs::now_ns() - t0;
    obs::MetricsShard& sh = inst_.registry->shard(ctx.tid());
    sh.add(size <= kSmallMax
               ? inst_.alloc_small
               : (size <= kLargeMax ? inst_.alloc_large : inst_.alloc_huge));
    if (off == 0) {
        sh.add(inst_.alloc_failures);
    }
    sh.record(inst_.alloc_ns, dt);
    sh.trace().push({inst_.op_alloc, ctx.tid(), t0, dt, size});
    return off;
}

void
CxlAllocator::deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset)
{
    CXL_ASSERT(offset != 0, "freeing null offset");
    ThreadState& ts = state_of(ctx);
    if (inst_.registry == nullptr) {
        if (small_.contains(offset)) {
            small_.deallocate(ctx, ts, offset);
        } else if (large_.contains(offset)) {
            large_.deallocate(ctx, ts, offset);
        } else if (huge_.contains(offset)) {
            huge_.deallocate(ctx, ts, offset);
        } else {
            CXL_FATAL("free of offset outside any heap region");
        }
        return;
    }
    std::uint64_t t0 = obs::now_ns();
    bool remote = false;
    bool huge = false;
    if (small_.contains(offset)) {
        remote = small_.deallocate(ctx, ts, offset);
    } else if (large_.contains(offset)) {
        remote = large_.deallocate(ctx, ts, offset);
    } else if (huge_.contains(offset)) {
        huge_.deallocate(ctx, ts, offset);
        huge = true;
    } else {
        CXL_FATAL("free of offset outside any heap region");
    }
    std::uint64_t dt = obs::now_ns() - t0;
    obs::MetricsShard& sh = inst_.registry->shard(ctx.tid());
    sh.add(huge ? inst_.free_huge
                : (remote ? inst_.free_remote : inst_.free_local));
    sh.record(remote ? inst_.remote_free_ns : inst_.free_ns, dt);
    sh.trace().push({inst_.op_free, ctx.tid(), t0, dt, offset});
}

void
CxlAllocator::deallocate_batch(pod::ThreadContext& ctx,
                               const cxl::HeapOffset* offsets,
                               std::uint32_t n)
{
    if (n == 0) {
        return;
    }
    ThreadState& ts = state_of(ctx);
    std::uint64_t t0 = inst_.registry != nullptr ? obs::now_ns() : 0;
    // Partition by heap so each slab heap sees its drain in one piece and
    // can pack distinct-slab decrements into shared doorbells. Huge frees
    // have no remote counter to batch.
    std::vector<cxl::HeapOffset> small_offs;
    std::vector<cxl::HeapOffset> large_offs;
    std::uint64_t huge_count = 0;
    for (std::uint32_t i = 0; i < n; i++) {
        cxl::HeapOffset offset = offsets[i];
        CXL_ASSERT(offset != 0, "freeing null offset");
        if (small_.contains(offset)) {
            small_offs.push_back(offset);
        } else if (large_.contains(offset)) {
            large_offs.push_back(offset);
        } else if (huge_.contains(offset)) {
            huge_.deallocate(ctx, ts, offset);
            huge_count++;
        } else {
            CXL_FATAL("free of offset outside any heap region");
        }
    }
    std::uint64_t remote = 0;
    if (!small_offs.empty()) {
        remote += small_.deallocate_batch(
            ctx, ts, small_offs.data(),
            static_cast<std::uint32_t>(small_offs.size()));
    }
    if (!large_offs.empty()) {
        remote += large_.deallocate_batch(
            ctx, ts, large_offs.data(),
            static_cast<std::uint32_t>(large_offs.size()));
    }
    if (inst_.registry == nullptr) {
        return;
    }
    obs::MetricsShard& sh = inst_.registry->shard(ctx.tid());
    sh.add(inst_.free_batches);
    sh.add(inst_.free_huge, huge_count);
    sh.add(inst_.free_remote, remote);
    sh.add(inst_.free_local, n - huge_count - remote);
    sh.record(inst_.free_batch_ns, obs::now_ns() - t0);
}

void
CxlAllocator::recover(pod::ThreadContext& ctx)
{
    cxl::MemSession& mem = ctx.mem();
    PerThread& pt = threads_[ctx.tid()];
    pt.state = ThreadState{};

    OpRecord record = log_.read(mem, ctx.tid());
    // Resume the version counter past the interrupted operation so no
    // future CAS reuses its tag.
    pt.state.version = (record.version + 1) & cxlsync::kVersionMask;
    // Huge-heap volatile state must exist before huge redo logic runs.
    huge_.rebuild_thread_state(ctx, pt.state);
    pt.attached = true;

    // Staged NMP operands are device state: a crash can leave Posted slots
    // that doom every competing mCAS on their targets (Fig. 6(b)) until
    // released. An interrupted batch (Op::FreeRemoteBatch) needs them as
    // its redo state — its recover case snapshots, then resets. Any other
    // record means no batch record was logged, so staged operands belong
    // to a batch that never (durably) happened: discard them.
    if (record.op != Op::FreeRemoteBatch) {
        pod_.nmp().reset_ring(ctx.tid());
    }

    switch (record.op) {
      case Op::None:
        break;
      case Op::CellPublish:
        // A cell publish has no heap effect to redo; the record's only
        // job — resuming the version counter past the CAS — happened
        // above. Whether the CAS landed is the publisher's protocol
        // question (dcas().did_succeed with the recorded version).
        break;
      case Op::HugeReserve:
      case Op::HugeAlloc:
      case Op::HugeFree:
        huge_.recover(ctx, pt.state, record);
        // Ownership may have changed during redo: rebuild once more.
        huge_.rebuild_thread_state(ctx, pt.state);
        break;
      default:
        if (record.large_heap) {
            large_.recover(ctx, pt.state, record);
        } else {
            small_.recover(ctx, pt.state, record);
        }
        break;
    }
    log_.clear(mem);
    if (inst_.registry != nullptr) {
        inst_.registry->shard(ctx.tid()).add(inst_.recoveries);
    }
}

Op
CxlAllocator::pending_op(pod::ThreadContext& ctx)
{
    return log_.read(ctx.mem(), ctx.tid()).op;
}

OpRecord
CxlAllocator::pending_record(pod::ThreadContext& ctx)
{
    return log_.read(ctx.mem(), ctx.tid());
}

void
CxlAllocator::quiesce_record(pod::ThreadContext& ctx)
{
    log_.clear(ctx.mem());
}

std::uint16_t
CxlAllocator::log_cell_publish(pod::ThreadContext& ctx)
{
    std::uint16_t version = state_of(ctx).next_version();
    OpRecord rec;
    rec.op = Op::CellPublish;
    rec.version = version;
    log_.log(ctx.mem(), rec);
    return version;
}

cxlsync::DetectableCas::Result
CxlAllocator::cell_publish(pod::ThreadContext& ctx, cxl::HeapOffset cell,
                           std::uint32_t expected, std::uint32_t desired)
{
    std::uint16_t version = log_cell_publish(ctx);
    return dcas_.try_cas(ctx.mem(), cell, expected, desired, version);
}

cxl::HeapOffset
CxlAllocator::record_block_offset(cxl::MemSession& mem,
                                  const OpRecord& record)
{
    SlabHeap& heap = record.large_heap ? large_ : small_;
    std::uint8_t biased = heap.debug_class_biased(mem, record.index);
    CXL_ASSERT(biased != 0, "record names a classless slab");
    std::uint32_t cls = biased - 1;
    std::uint64_t block_size = record.large_heap ? large_class_size(cls)
                                                 : small_class_size(cls);
    return heap.slab_data(record.index) +
           static_cast<cxl::HeapOffset>(record.aux) * block_size;
}

void
CxlAllocator::cleanup(pod::ThreadContext& ctx)
{
    huge_.cleanup(ctx, state_of(ctx));
    if (inst_.registry != nullptr) {
        inst_.registry->shard(ctx.tid()).add(inst_.cleanups);
    }
}

bool
CxlAllocator::resolve_fault(pod::Process& process, cxl::MemSession& mem,
                            cxl::HeapOffset offset, pod::MappedRange* out)
{
    (void)process;
    if (small_.resolve(mem, offset, out)) {
        return true;
    }
    if (large_.resolve(mem, offset, out)) {
        return true;
    }
    return huge_.resolve(mem, offset, out);
}

void
CxlAllocator::check_invariants(cxl::MemSession& mem)
{
    small_.check_global_invariants(mem);
    large_.check_global_invariants(mem);
    huge_.check_invariants(mem);
}

void
CxlAllocator::check_local_invariants(cxl::MemSession& mem)
{
    small_.check_local_invariants(mem);
    large_.check_local_invariants(mem);
}

CxlAllocator::Stats
CxlAllocator::stats(cxl::MemSession& mem)
{
    Stats s;
    s.small = small_.stats(mem);
    s.large = large_.stats(mem);
    s.huge = huge_.stats(mem);
    s.hwcc_bytes = layout_.hwcc_bytes();
    s.committed_bytes = pod_.device().committed_bytes();
    return s;
}

} // namespace cxlalloc
