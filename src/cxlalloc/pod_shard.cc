#include "cxlalloc/pod_shard.h"

#include <algorithm>

#include "common/assert.h"
#include "common/cacheline.h"

namespace cxlalloc {

namespace {

/// Smallest window_bits whose window holds @p bytes; windows below one
/// page make no sense (the layout base must be page aligned).
std::uint32_t
window_bits_for(std::uint64_t bytes)
{
    std::uint32_t bits = 12;
    while ((1ULL << bits) < bytes) {
        bits++;
    }
    return bits;
}

} // namespace

cxl::DeviceConfig
PodShardedAllocator::device_config(const Config& shard_config,
                                   const pod::Topology& topology,
                                   cxl::CoherenceMode mode,
                                   bool simulate_cache,
                                   std::uint64_t extra_window_bytes,
                                   const Config* dram_config)
{
    Config base_cfg = shard_config;
    base_cfg.base = 0;
    Layout probe(base_cfg);

    std::uint64_t window = cxlcommon::align_up(probe.end(), cxl::kPageSize) +
                           cxlcommon::align_up(extra_window_bytes,
                                               cxl::kPageSize);
    std::uint64_t sync = probe.hwcc_end();

    // Windows are uniform, so tiered pods size them (and the per-window
    // sync prefix) for the larger of the two shard geometries.
    if (dram_config != nullptr) {
        Config dram_cfg = *dram_config;
        dram_cfg.base = 0;
        Layout dram_probe(dram_cfg);
        window = std::max(window, cxlcommon::align_up(dram_probe.end(),
                                                      cxl::kPageSize));
        sync = std::max(sync, dram_probe.hwcc_end());
    }

    cxl::DeviceConfig dev;
    dev.windows = topology.devices();
    dev.window_bits = window_bits_for(window);
    dev.size = static_cast<std::uint64_t>(dev.windows) << dev.window_bits;
    dev.mode = mode;
    dev.sync_region_size = sync;
    dev.simulate_cache = simulate_cache;
    return dev;
}

PodShardedAllocator::PodShardedAllocator(pod::Pod& pod,
                                         const Config& shard_config,
                                         const Config* dram_config)
    : pod_(pod), dram_percent_(shard_config.dram_percent),
      dram_max_block_(shard_config.dram_max_block != 0
                          ? shard_config.dram_max_block
                          : kSmallMax)
{
    const pod::Topology& topo = pod.topology();
    CXL_FATAL_IF(topo.trivial(),
                 "pod-sharded allocation needs a non-trivial topology");
    CXL_FATAL_IF(pod.device().windows() != topo.devices(),
                 "device windows must match topology devices");
    CXL_FATAL_IF(topo.has_dram_tier() && dram_config == nullptr,
                 "tiered topology needs a DRAM shard config");

    shards_.reserve(topo.devices());
    for (cxl::DeviceId d = 0; d < topo.devices(); d++) {
        bool dram = topo.tier_of(d) == cxl::MemTier::LocalDram;
        Config cfg = dram ? *dram_config : shard_config;
        cfg.base = pod.device().window_base(d);
        shards_.push_back(std::make_unique<CxlAllocator>(pod, cfg));
    }

    order_.resize(topo.hosts());
    sweep_.resize(topo.hosts());
    dram_of_.resize(topo.hosts());
    for (pod::HostId h = 0; h < topo.hosts(); h++) {
        order_[h] = topo.placement_order(h);
        CXL_FATAL_IF(order_[h].empty(),
                     "host reaches no device in this topology");
        CXL_FATAL_IF(order_[h].front() != topo.home_of(h),
                     "placement order must start at the home device");
        dram_of_[h] = topo.dram_device_of(h);
        if (dram_of_[h] >= topo.devices()) {
            dram_of_[h] = static_cast<cxl::DeviceId>(shards_.size());
        }
        sweep_[h] = order_[h];
        if (dram_of_[h] < shards_.size()) {
            sweep_[h].push_back(dram_of_[h]);
        }
    }
    for (auto& s : stride_) {
        s.configure(dram_percent_);
    }
    health_ = std::vector<HealthMask>(topo.hosts());
    refresh_placement();
}

void
PodShardedAllocator::refresh_placement()
{
    const pod::Topology& topo = pod_.topology();
    for (pod::HostId h = 0; h < topo.hosts(); h++) {
        std::uint32_t down = 0;
        std::uint32_t suspect = 0;
        for (cxl::DeviceId d : sweep_[h]) {
            switch (topo.edge_state(h, d)) {
              case cxl::EdgeState::Down:
                down |= 1u << d;
                break;
              case cxl::EdgeState::Suspect:
                suspect |= 1u << d;
                break;
              case cxl::EdgeState::Up:
                break;
            }
        }
        health_[h].down.store(down, std::memory_order_release);
        health_[h].suspect.store(suspect, std::memory_order_release);
    }
}

std::uint32_t
PodShardedAllocator::down_mask(pod::HostId host) const
{
    return health_[host].down.load(std::memory_order_acquire);
}

std::uint32_t
PodShardedAllocator::suspect_mask(pod::HostId host) const
{
    return health_[host].suspect.load(std::memory_order_acquire);
}

void
PodShardedAllocator::attach(pod::Process& process)
{
    for (auto& shard : shards_) {
        shard->attach(process);
    }
    // Every shard's attach registered itself; the router must win so
    // faults on any window reach the right shard.
    process.set_resolver(this);
}

void
PodShardedAllocator::attach_thread(pod::ThreadContext& ctx)
{
    // Home shard only: rebuilding volatile state reads the shard's window,
    // so an eager sweep would charge every foreign edge before the thread
    // does any work (and in a sparse topology would fault on unreachable
    // windows). Non-home shards self-attach on the first operation that
    // actually reaches them (CxlAllocator::state_of).
    shards_[reach_of(ctx).front()]->attach_thread(ctx);
}

cxl::HeapOffset
PodShardedAllocator::allocate(pod::ThreadContext& ctx, std::uint64_t size)
{
    auto host = static_cast<pod::HostId>(ctx.process().host());
    std::uint32_t down = health_[host].down.load(std::memory_order_acquire);
    std::uint32_t suspect =
        health_[host].suspect.load(std::memory_order_acquire);
    // Tier split first: the stride scheduler consumes a ticket only for
    // eligible requests, so the DRAM share applies to what could actually
    // have gone to DRAM. Exhaustion of the capacity-limited DRAM shard
    // falls through to the normal CXL probe order, as does a DRAM window
    // behind a degraded edge.
    bool tier_split = tiered(host) && size <= dram_max_block_;
    if (tier_split && (((down | suspect) >> dram_of_[host]) & 1) == 0 &&
        stride_[ctx.tid()].next_dram()) {
        cxl::HeapOffset offset = shards_[dram_of_[host]]->allocate(ctx, size);
        if (offset != 0) {
            if (inst_.registry != nullptr) {
                inst_.registry->shard(ctx.tid()).add(inst_.tier_dram);
            }
            return offset;
        }
    }
    // Two-pass probe: healthy edges first, Suspect edges only once every
    // healthy shard is exhausted, Down edges never (the session would
    // throw EdgeDownError anyway — the mask makes degradation a placement
    // decision instead of an exception).
    const std::vector<cxl::DeviceId>& order = order_[host];
    for (int pass = 0; pass < 2; pass++) {
        for (std::size_t i = 0; i < order.size(); i++) {
            cxl::DeviceId d = order[i];
            if ((down >> d) & 1) {
                continue;
            }
            bool is_suspect = (suspect >> d) & 1;
            if (is_suspect != (pass == 1)) {
                continue;
            }
            cxl::HeapOffset offset = shards_[d]->allocate(ctx, size);
            if (offset != 0) {
                if (inst_.registry != nullptr) {
                    obs::MetricsShard& sh = inst_.registry->shard(ctx.tid());
                    sh.add(i == 0 ? inst_.alloc_home : inst_.alloc_steal);
                    if (tier_split) {
                        sh.add(inst_.tier_cxl);
                    }
                    if (pass == 1) {
                        sh.add(inst_.alloc_degraded);
                    }
                }
                return offset;
            }
        }
        if (suspect == 0) {
            break; // no Suspect edges: the second pass probes nothing
        }
    }
    if (inst_.registry != nullptr) {
        inst_.registry->shard(ctx.tid()).add(inst_.alloc_exhausted);
    }
    return 0;
}

void
PodShardedAllocator::park_free(pod::ThreadContext& ctx,
                               cxl::HeapOffset offset)
{
    {
        std::lock_guard<std::mutex> lock(park_mu_);
        parked_.push_back(offset);
    }
    if (inst_.registry != nullptr) {
        inst_.registry->shard(ctx.tid()).add(inst_.parked);
    }
}

void
PodShardedAllocator::deallocate(pod::ThreadContext& ctx,
                                cxl::HeapOffset offset)
{
    cxl::DeviceId d = pod_.device().device_of(offset);
    CXL_ASSERT(d < shards_.size(), "free offset names no shard");
    auto host = static_cast<pod::HostId>(ctx.process().host());
    if ((health_[host].down.load(std::memory_order_acquire) >> d) & 1) {
        park_free(ctx, offset);
        return;
    }
    shards_[d]->deallocate(ctx, offset);
}

void
PodShardedAllocator::deallocate_batch(pod::ThreadContext& ctx,
                                      const cxl::HeapOffset* offsets,
                                      std::uint32_t n)
{
    // Partition by owning window so each shard still sees one contiguous
    // batch (one NMP doorbell per ring, as in the single-heap path).
    std::vector<std::vector<cxl::HeapOffset>> parts(shards_.size());
    for (std::uint32_t i = 0; i < n; i++) {
        cxl::DeviceId d = pod_.device().device_of(offsets[i]);
        CXL_ASSERT(d < shards_.size(), "free offset names no shard");
        parts[d].push_back(offsets[i]);
    }
    auto host = static_cast<pod::HostId>(ctx.process().host());
    std::uint32_t down = health_[host].down.load(std::memory_order_acquire);
    for (cxl::DeviceId d = 0; d < parts.size(); d++) {
        if (parts[d].empty()) {
            continue;
        }
        if ((down >> d) & 1) {
            for (cxl::HeapOffset off : parts[d]) {
                park_free(ctx, off);
            }
            continue;
        }
        shards_[d]->deallocate_batch(
            ctx, parts[d].data(),
            static_cast<std::uint32_t>(parts[d].size()));
    }
}

std::uint64_t
PodShardedAllocator::parked_frees() const
{
    std::lock_guard<std::mutex> lock(park_mu_);
    return parked_.size();
}

std::uint32_t
PodShardedAllocator::replay_parked(pod::ThreadContext& ctx)
{
    std::vector<cxl::HeapOffset> taken;
    {
        std::lock_guard<std::mutex> lock(park_mu_);
        taken.swap(parked_);
    }
    if (taken.empty()) {
        return 0;
    }
    auto host = static_cast<pod::HostId>(ctx.process().host());
    std::uint32_t down = health_[host].down.load(std::memory_order_acquire);
    std::vector<cxl::HeapOffset> replay;
    std::vector<cxl::HeapOffset> still_down;
    for (cxl::HeapOffset off : taken) {
        cxl::DeviceId d = pod_.device().device_of(off);
        ((down >> d) & 1 ? still_down : replay).push_back(off);
    }
    if (!still_down.empty()) {
        std::lock_guard<std::mutex> lock(park_mu_);
        parked_.insert(parked_.end(), still_down.begin(), still_down.end());
    }
    if (replay.empty()) {
        return 0;
    }
    // The batch path keeps the NMP doorbell packing of a bulk drain; it
    // re-reads the mask, so a device that went Down again since the
    // filter above simply re-parks its offsets (a free is never lost).
    deallocate_batch(ctx, replay.data(),
                     static_cast<std::uint32_t>(replay.size()));
    if (inst_.registry != nullptr) {
        inst_.registry->shard(ctx.tid()).add(inst_.replayed, replay.size());
    }
    return static_cast<std::uint32_t>(replay.size());
}

void
PodShardedAllocator::recover(pod::ThreadContext& ctx)
{
    // The adopter sweeps the shards its host reaches (which must include
    // everything the dead thread touched — adopt recovery work on a host
    // wired at least as widely as the crashed one). At most one shard
    // holds the thread's interrupted NMP batch (records are per-shard, but
    // the thread was executing at most one operation when it died). Its
    // redo operands live in the thread's NMP ring; every other shard's
    // recover() resets that ring, so the batch shard must go first.
    // Redoing the remaining shards' stale-but-completed records is
    // idempotent by design.
    const std::vector<cxl::DeviceId>& reach = sweep_of(ctx);
    cxl::DeviceId batch_shard = static_cast<cxl::DeviceId>(shards_.size());
    for (cxl::DeviceId d : reach) {
        if (shards_[d]->pending_op(ctx) == Op::FreeRemoteBatch) {
            batch_shard = d;
            break;
        }
    }
    if (batch_shard < shards_.size()) {
        shards_[batch_shard]->recover(ctx);
    }
    for (cxl::DeviceId d : reach) {
        if (d != batch_shard) {
            shards_[d]->recover(ctx);
        }
    }
}

void
PodShardedAllocator::cleanup(pod::ThreadContext& ctx)
{
    for (cxl::DeviceId d : sweep_of(ctx)) {
        shards_[d]->cleanup(ctx);
    }
}

const std::vector<cxl::DeviceId>&
PodShardedAllocator::reach_of(pod::ThreadContext& ctx) const
{
    return order_[static_cast<pod::HostId>(ctx.process().host())];
}

const std::vector<cxl::DeviceId>&
PodShardedAllocator::sweep_of(pod::ThreadContext& ctx) const
{
    return sweep_[static_cast<pod::HostId>(ctx.process().host())];
}

void
PodShardedAllocator::check_invariants(cxl::MemSession& mem)
{
    for (auto& shard : shards_) {
        shard->check_invariants(mem);
    }
}

void
PodShardedAllocator::set_metrics(obs::MetricsRegistry* registry)
{
    inst_ = Instruments{};
    inst_.registry = registry;
    for (auto& shard : shards_) {
        shard->set_metrics(registry);
    }
    if (registry == nullptr) {
        return;
    }
    inst_.alloc_home = registry->counter("pod.alloc_home");
    inst_.alloc_steal = registry->counter("pod.alloc_steal");
    inst_.alloc_exhausted = registry->counter("pod.alloc_exhausted");
    inst_.tier_dram = registry->counter("alloc.tier_dram");
    inst_.tier_cxl = registry->counter("alloc.tier_cxl");
    inst_.alloc_degraded = registry->counter("pod.alloc_degraded");
    inst_.parked = registry->counter("pod.parked_frees");
    inst_.replayed = registry->counter("pod.replayed_frees");
}

bool
PodShardedAllocator::resolve_fault(pod::Process& process,
                                   cxl::MemSession& mem,
                                   cxl::HeapOffset offset,
                                   pod::MappedRange* out)
{
    cxl::DeviceId d = pod_.device().device_of(offset);
    if (d >= shards_.size()) {
        return false;
    }
    return shards_[d]->resolve_fault(process, mem, offset, out);
}

cxl::HeapOffset
PodShardedAllocator::extra_base(cxl::DeviceId device) const
{
    CXL_ASSERT(device < shards_.size(), "no such shard");
    return cxlcommon::align_up(shards_[device]->layout().end(),
                               cxl::kPageSize);
}

std::uint64_t
PodShardedAllocator::hwcc_bytes() const
{
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->layout().hwcc_bytes();
    }
    return total;
}

} // namespace cxlalloc
