#include "cxlalloc/pod_shard.h"

#include <algorithm>

#include "common/assert.h"
#include "common/cacheline.h"

namespace cxlalloc {

namespace {

/// Smallest window_bits whose window holds @p bytes; windows below one
/// page make no sense (the layout base must be page aligned).
std::uint32_t
window_bits_for(std::uint64_t bytes)
{
    std::uint32_t bits = 12;
    while ((1ULL << bits) < bytes) {
        bits++;
    }
    return bits;
}

} // namespace

cxl::DeviceConfig
PodShardedAllocator::device_config(const Config& shard_config,
                                   const pod::Topology& topology,
                                   cxl::CoherenceMode mode,
                                   bool simulate_cache,
                                   std::uint64_t extra_window_bytes)
{
    Config base_cfg = shard_config;
    base_cfg.base = 0;
    Layout probe(base_cfg);

    std::uint64_t window = cxlcommon::align_up(probe.end(), cxl::kPageSize) +
                           cxlcommon::align_up(extra_window_bytes,
                                               cxl::kPageSize);

    cxl::DeviceConfig dev;
    dev.windows = topology.devices();
    dev.window_bits = window_bits_for(window);
    dev.size = static_cast<std::uint64_t>(dev.windows) << dev.window_bits;
    dev.mode = mode;
    dev.sync_region_size = probe.hwcc_end();
    dev.simulate_cache = simulate_cache;
    return dev;
}

PodShardedAllocator::PodShardedAllocator(pod::Pod& pod,
                                         const Config& shard_config)
    : pod_(pod)
{
    const pod::Topology& topo = pod.topology();
    CXL_FATAL_IF(topo.trivial(),
                 "pod-sharded allocation needs a non-trivial topology");
    CXL_FATAL_IF(pod.device().windows() != topo.devices(),
                 "device windows must match topology devices");

    shards_.reserve(topo.devices());
    for (cxl::DeviceId d = 0; d < topo.devices(); d++) {
        Config cfg = shard_config;
        cfg.base = pod.device().window_base(d);
        shards_.push_back(std::make_unique<CxlAllocator>(pod, cfg));
    }

    order_.resize(topo.hosts());
    for (pod::HostId h = 0; h < topo.hosts(); h++) {
        order_[h] = topo.placement_order(h);
        CXL_FATAL_IF(order_[h].empty(),
                     "host reaches no device in this topology");
        CXL_FATAL_IF(order_[h].front() != topo.home_of(h),
                     "placement order must start at the home device");
    }
}

void
PodShardedAllocator::attach(pod::Process& process)
{
    for (auto& shard : shards_) {
        shard->attach(process);
    }
    // Every shard's attach registered itself; the router must win so
    // faults on any window reach the right shard.
    process.set_resolver(this);
}

void
PodShardedAllocator::attach_thread(pod::ThreadContext& ctx)
{
    // Home shard only: rebuilding volatile state reads the shard's window,
    // so an eager sweep would charge every foreign edge before the thread
    // does any work (and in a sparse topology would fault on unreachable
    // windows). Non-home shards self-attach on the first operation that
    // actually reaches them (CxlAllocator::state_of).
    shards_[reach_of(ctx).front()]->attach_thread(ctx);
}

cxl::HeapOffset
PodShardedAllocator::allocate(pod::ThreadContext& ctx, std::uint64_t size)
{
    auto host = static_cast<pod::HostId>(ctx.process().host());
    const std::vector<cxl::DeviceId>& order = order_[host];
    for (std::size_t i = 0; i < order.size(); i++) {
        cxl::HeapOffset offset = shards_[order[i]]->allocate(ctx, size);
        if (offset != 0) {
            if (inst_.registry != nullptr) {
                inst_.registry->shard(ctx.tid()).add(
                    i == 0 ? inst_.alloc_home : inst_.alloc_steal);
            }
            return offset;
        }
    }
    if (inst_.registry != nullptr) {
        inst_.registry->shard(ctx.tid()).add(inst_.alloc_exhausted);
    }
    return 0;
}

void
PodShardedAllocator::deallocate(pod::ThreadContext& ctx,
                                cxl::HeapOffset offset)
{
    cxl::DeviceId d = pod_.device().device_of(offset);
    CXL_ASSERT(d < shards_.size(), "free offset names no shard");
    shards_[d]->deallocate(ctx, offset);
}

void
PodShardedAllocator::deallocate_batch(pod::ThreadContext& ctx,
                                      const cxl::HeapOffset* offsets,
                                      std::uint32_t n)
{
    // Partition by owning window so each shard still sees one contiguous
    // batch (one NMP doorbell per ring, as in the single-heap path).
    std::vector<std::vector<cxl::HeapOffset>> parts(shards_.size());
    for (std::uint32_t i = 0; i < n; i++) {
        cxl::DeviceId d = pod_.device().device_of(offsets[i]);
        CXL_ASSERT(d < shards_.size(), "free offset names no shard");
        parts[d].push_back(offsets[i]);
    }
    for (cxl::DeviceId d = 0; d < parts.size(); d++) {
        if (!parts[d].empty()) {
            shards_[d]->deallocate_batch(
                ctx, parts[d].data(),
                static_cast<std::uint32_t>(parts[d].size()));
        }
    }
}

void
PodShardedAllocator::recover(pod::ThreadContext& ctx)
{
    // The adopter sweeps the shards its host reaches (which must include
    // everything the dead thread touched — adopt recovery work on a host
    // wired at least as widely as the crashed one). At most one shard
    // holds the thread's interrupted NMP batch (records are per-shard, but
    // the thread was executing at most one operation when it died). Its
    // redo operands live in the thread's NMP ring; every other shard's
    // recover() resets that ring, so the batch shard must go first.
    // Redoing the remaining shards' stale-but-completed records is
    // idempotent by design.
    const std::vector<cxl::DeviceId>& reach = reach_of(ctx);
    cxl::DeviceId batch_shard = static_cast<cxl::DeviceId>(shards_.size());
    for (cxl::DeviceId d : reach) {
        if (shards_[d]->pending_op(ctx) == Op::FreeRemoteBatch) {
            batch_shard = d;
            break;
        }
    }
    if (batch_shard < shards_.size()) {
        shards_[batch_shard]->recover(ctx);
    }
    for (cxl::DeviceId d : reach) {
        if (d != batch_shard) {
            shards_[d]->recover(ctx);
        }
    }
}

void
PodShardedAllocator::cleanup(pod::ThreadContext& ctx)
{
    for (cxl::DeviceId d : reach_of(ctx)) {
        shards_[d]->cleanup(ctx);
    }
}

const std::vector<cxl::DeviceId>&
PodShardedAllocator::reach_of(pod::ThreadContext& ctx) const
{
    return order_[static_cast<pod::HostId>(ctx.process().host())];
}

void
PodShardedAllocator::check_invariants(cxl::MemSession& mem)
{
    for (auto& shard : shards_) {
        shard->check_invariants(mem);
    }
}

void
PodShardedAllocator::set_metrics(obs::MetricsRegistry* registry)
{
    inst_ = Instruments{};
    inst_.registry = registry;
    for (auto& shard : shards_) {
        shard->set_metrics(registry);
    }
    if (registry == nullptr) {
        return;
    }
    inst_.alloc_home = registry->counter("pod.alloc_home");
    inst_.alloc_steal = registry->counter("pod.alloc_steal");
    inst_.alloc_exhausted = registry->counter("pod.alloc_exhausted");
}

bool
PodShardedAllocator::resolve_fault(pod::Process& process,
                                   cxl::MemSession& mem,
                                   cxl::HeapOffset offset,
                                   pod::MappedRange* out)
{
    cxl::DeviceId d = pod_.device().device_of(offset);
    if (d >= shards_.size()) {
        return false;
    }
    return shards_[d]->resolve_fault(process, mem, offset, out);
}

cxl::HeapOffset
PodShardedAllocator::extra_base(cxl::DeviceId device) const
{
    CXL_ASSERT(device < shards_.size(), "no such shard");
    return cxlcommon::align_up(shards_[device]->layout().end(),
                               cxl::kPageSize);
}

std::uint64_t
PodShardedAllocator::hwcc_bytes() const
{
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
        total += shard->layout().hwcc_bytes();
    }
    return total;
}

} // namespace cxlalloc
