/// @file
/// The slab heap used for both the small (8 B-1 KiB, 32 KiB slabs) and
/// large (1 KiB-512 KiB, 512 KiB slabs) heaps — the paper's §3.1.1 design,
/// instantiated twice.
///
/// Core ideas reproduced here:
///  - per-slab free *bitset* in SWcc metadata, allocated from only by the
///    slab's owner (no synchronization on the hot path);
///  - a per-slab HWcc remote-free *down-counter* (2 B in the paper, widened
///    to one detectable-CAS word): remote frees decrement it, and whoever
///    takes it to zero steals the fully-remotely-freed slab;
///  - the detached / disowned states (paper Fig. 4) that let full slabs
///    leave the free lists without blocking reclamation;
///  - the SWcc protocol (§3.2.2): descriptors are flushed+fenced exactly
///    when ownership may change; readers of SWccDesc.owner may use stale
///    cached values safely (the case analysis in the paper);
///  - 8-byte redo records before every operation, with idempotent redo
///    (§3.4.2) driven by detectable-CAS success queries.

#pragma once

#include <cstdint>

#include "cxl/mem_ops.h"
#include "cxlalloc/layout.h"
#include "cxlalloc/recovery.h"
#include "cxlalloc/thread_state.h"
#include "obs/registry.h"
#include "pod/fault_handler.h"
#include "pod/thread_context.h"
#include "sync/detectable_cas.h"

namespace cxlalloc {

/// One slab heap (small or large).
class SlabHeap {
  public:
    /// @param large  selects the large-heap geometry and record heap bit.
    SlabHeap(const Layout* layout, bool large, cxlsync::DetectableCas* dcas,
             RecoveryLog* log);

    /// Allocates a block of at least @p size bytes; returns its heap
    /// offset, or 0 if the heap is exhausted.
    cxl::HeapOffset allocate(pod::ThreadContext& ctx, ThreadState& ts,
                             std::uint64_t size);

    /// Frees the block at @p offset. Returns true when the free took the
    /// remote path (the slab is owned by another thread), which observers
    /// count separately: remote frees cost a detectable CAS on the HWcc
    /// down-counter rather than a local bitset write.
    bool deallocate(pod::ThreadContext& ctx, ThreadState& ts,
                    cxl::HeapOffset offset);

    /// Frees @p n blocks of this heap in one drain. Semantically equal to
    /// n deallocate() calls; under NoHwcc the remote decrements of
    /// DISTINCT slabs share batched NMP doorbells (one device round trip
    /// per ring, §4) instead of one round trip each. Final decrements
    /// (counter would reach zero and steal) stay on the serial path so a
    /// batched operand can never land a zero counter — the invariant the
    /// Op::FreeRemoteBatch recovery case relies on. Conflicted operands
    /// retry with bounded exponential backoff. Returns the number of
    /// frees that took the remote path.
    std::uint32_t deallocate_batch(pod::ThreadContext& ctx, ThreadState& ts,
                                   const cxl::HeapOffset* offsets,
                                   std::uint32_t n);

    /// True if @p offset lies in this heap's data region.
    bool contains(cxl::HeapOffset offset) const;

    /// Current heap length in slabs.
    std::uint32_t length(cxl::MemSession& mem);

    /// PC-T fault support: if @p offset lies in this heap's (data or
    /// descriptor) regions and is backed per current heap length, fills
    /// @p out and returns true.
    bool resolve(cxl::MemSession& mem, cxl::HeapOffset offset,
                 pod::MappedRange* out);

    /// Idempotently redoes the interrupted operation @p record on behalf
    /// of the crashed thread whose slot @p ctx adopted.
    void recover(pod::ThreadContext& ctx, ThreadState& ts,
                 const OpRecord& record);

    /// Runtime invariant checks (paper §5.1). Global: free list acyclic,
    /// slabs on it unowned. Requires quiescence.
    void check_global_invariants(cxl::MemSession& mem);

    /// Invariants over @p mem's thread's local lists: sized slabs are
    /// non-full, owned, correctly classed; lists acyclic.
    void check_local_invariants(cxl::MemSession& mem);

    /// Aggregate statistics for benchmarks.
    struct Stats {
        std::uint32_t length = 0;       ///< slabs ever created
        std::uint32_t global_free = 0;  ///< slabs on the global free list
        std::uint64_t data_bytes = 0;   ///< length * slab size
    };

    Stats stats(cxl::MemSession& mem);

    /// Enables heap-internal op counters ("alloc.fullcheck_fast",
    /// "alloc.scavenges"), sharded by thread id. nullptr disables.
    void set_metrics(obs::MetricsRegistry* registry);

    std::uint64_t slab_size() const { return slab_size_; }

    /// Data offset of slab @p slab.
    cxl::HeapOffset slab_data(std::uint32_t slab) const;

    // ---- test-only observers (model tests cross-check the O(1) counter
    //      against a full bitset scan after every operation) ----

    /// Raw SWccDesc.free counter of @p slab.
    std::uint32_t debug_free_blocks(cxl::MemSession& mem, std::uint32_t slab);
    /// Popcount of @p slab's bitset over its current class's words.
    /// Slab must have a class.
    std::uint32_t debug_bitset_count(cxl::MemSession& mem, std::uint32_t slab);
    /// Size class + 1; 0 = classless (bitset and counter are meaningless).
    std::uint8_t debug_class_biased(cxl::MemSession& mem, std::uint32_t slab);
    /// Raw HWcc remote-free down-counter of @p slab. Starts at the class's
    /// block count and decrements per remote free, so on a quiescent slab
    /// `remote_free - free_blocks` is the number of live blocks — the
    /// conservation law the fault-storm drain oracle sweeps (remote frees
    /// never merge into the bitset until the slab is fully stolen, so the
    /// bitset alone cannot prove a heap empty).
    std::uint32_t debug_remote_free(cxl::MemSession& mem, std::uint32_t slab);

    /// Owning thread of @p slab (cxl::kNoThread once the slab has been
    /// disowned — every free then takes the remote mCAS path regardless
    /// of the caller, which is what HotSlabMigrator::rehome inspects).
    cxl::ThreadId debug_owner(cxl::MemSession& mem, std::uint32_t slab);

  private:
    // ---- descriptor field access (SWccDesc) ----
    cxl::HeapOffset desc(std::uint32_t slab) const;
    cxl::HeapOffset hwcc(std::uint32_t slab) const;

    std::uint32_t next_raw(cxl::MemSession& mem, std::uint32_t slab);
    void set_next_raw(cxl::MemSession& mem, std::uint32_t slab,
                      std::uint32_t raw);
    std::uint32_t prev_raw(cxl::MemSession& mem, std::uint32_t slab);
    void set_prev_raw(cxl::MemSession& mem, std::uint32_t slab,
                      std::uint32_t raw);
    cxl::ThreadId owner(cxl::MemSession& mem, std::uint32_t slab);
    void set_owner(cxl::MemSession& mem, std::uint32_t slab,
                   cxl::ThreadId tid);
    /// Size class + 1; 0 = none.
    std::uint8_t class_biased(cxl::MemSession& mem, std::uint32_t slab);
    void set_class_biased(cxl::MemSession& mem, std::uint32_t slab,
                          std::uint8_t biased);
    SlabState state(cxl::MemSession& mem, std::uint32_t slab);
    void set_state(cxl::MemSession& mem, std::uint32_t slab, SlabState s);

    /// Flush + fence the whole descriptor: required before any transition
    /// after which another thread may become the writer (paper §3.2.2).
    void flush_desc(cxl::MemSession& mem, std::uint32_t slab);

    // ---- bitset + SWccDesc.free counter ----
    // The owner-maintained free counter shadows the bitset popcount so
    // full/empty transition checks are one 2-byte load instead of an
    // O(words) scan. bitset_clear/bitset_set adjust it only when the bit
    // actually flips (idempotent redo may replay them); crash recovery
    // recomputes it from the bitset, which stays the durable truth.
    std::uint32_t blocks_of(std::uint32_t cls) const;
    std::uint32_t bitset_words(std::uint32_t cls) const;
    std::uint32_t free_blocks(cxl::MemSession& mem, std::uint32_t slab);
    void set_free_blocks(cxl::MemSession& mem, std::uint32_t slab,
                         std::uint32_t count);
    void bitset_fill(cxl::MemSession& mem, std::uint32_t slab,
                     std::uint32_t cls);
    /// First free block, or kNoBlock. Stores the scan hint only when
    /// @p advance_hint (callers about to clear the returned bit); pure
    /// peeks must not dirty the SWcc line.
    std::uint32_t bitset_peek(cxl::MemSession& mem, std::uint32_t slab,
                              std::uint32_t cls, bool advance_hint);
    /// Clears (resp. sets) @p block's bit; returns the slab's free-block
    /// count after the operation. No-op on an already-clear (-set) bit.
    std::uint32_t bitset_clear(cxl::MemSession& mem, std::uint32_t slab,
                               std::uint32_t block);
    bool bitset_test(cxl::MemSession& mem, std::uint32_t slab,
                     std::uint32_t block);
    std::uint32_t bitset_set(cxl::MemSession& mem, std::uint32_t slab,
                             std::uint32_t block);
    bool bitset_none(cxl::MemSession& mem, std::uint32_t slab,
                     std::uint32_t cls);
    std::uint32_t bitset_count(cxl::MemSession& mem, std::uint32_t slab,
                               std::uint32_t cls);

    static constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};

    // ---- local list operations (owner-only) ----
    cxl::HeapOffset local_row(cxl::ThreadId tid) const;
    cxl::HeapOffset sized_head_off(cxl::ThreadId tid,
                                   std::uint32_t cls) const;
    cxl::HeapOffset unsized_head_off(cxl::ThreadId tid) const;
    cxl::HeapOffset unsized_count_off(cxl::ThreadId tid) const;

    void push_sized(cxl::MemSession& mem, std::uint32_t cls,
                    std::uint32_t slab);
    void remove_sized(cxl::MemSession& mem, std::uint32_t cls,
                      std::uint32_t slab);
    void push_unsized(cxl::MemSession& mem, std::uint32_t slab);
    /// Pops the unsized head; list must be nonempty.
    std::uint32_t pop_unsized(cxl::MemSession& mem);
    bool on_unsized_list(cxl::MemSession& mem, std::uint32_t slab);

    // ---- operations ----
    bool refill(pod::ThreadContext& ctx, ThreadState& ts, std::uint32_t cls);
    void init_from_unsized(pod::ThreadContext& ctx, std::uint32_t slab,
                           std::uint32_t cls);
    bool pop_global(pod::ThreadContext& ctx, ThreadState& ts);
    bool extend(pod::ThreadContext& ctx, ThreadState& ts);
    void full_transition(pod::ThreadContext& ctx, std::uint32_t slab,
                         std::uint32_t cls);
    void free_local(pod::ThreadContext& ctx, ThreadState& ts,
                    std::uint32_t slab, std::uint32_t block);
    void free_remote(pod::ThreadContext& ctx, ThreadState& ts,
                     std::uint32_t slab);
    /// Takes ownership of an unlinked, empty slab onto the unsized list.
    void acquire_to_unsized(pod::ThreadContext& ctx, std::uint32_t slab);
    /// Moves one slab from TL unsized to the global free list.
    void push_global_one(pod::ThreadContext& ctx, ThreadState& ts);
    /// Enforces the unsized-list length threshold (paper §3.1.1).
    void trim_unsized(pod::ThreadContext& ctx, ThreadState& ts);
    /// Reclaims an idle, completely-empty warm slab from any of this
    /// thread's sized lists (memory-pressure fallback).
    bool scavenge_warm_slab(pod::ThreadContext& ctx, ThreadState& ts);
    void install_slab_mappings(pod::ThreadContext& ctx, std::uint32_t slab);

    /// Mapping range of slab @p slab's SWcc descriptor (page-rounded).
    pod::MappedRange desc_mapping(std::uint32_t slab) const;

    /// Resolved metric ids; valid only while registry != nullptr.
    struct Instruments {
        obs::MetricsRegistry* registry = nullptr;
        obs::MetricId fullcheck_fast = obs::kInvalidMetric;
        obs::MetricId scavenges = obs::kInvalidMetric;
    };

    const Layout* layout_;
    bool large_;
    cxlsync::DetectableCas* dcas_;
    RecoveryLog* log_;

    std::uint32_t num_slabs_;
    std::uint32_t num_classes_;
    std::uint64_t slab_size_;
    cxl::HeapOffset len_word_;
    cxl::HeapOffset free_word_;
    cxl::HeapOffset data_base_;
    cxl::HeapOffset swcc_base_;
    std::uint64_t desc_stride_;
    cxl::HeapOffset hwcc_base_;
    cxl::HeapOffset local_base_;

    /// TL unsized lists longer than this spill to the global free list
    /// (Config::unsized_limit).
    std::uint32_t unsized_limit_;

    Instruments inst_;
};

} // namespace cxlalloc
