/// @file
/// C-compatible interface to cxlalloc, for applications that want a
/// malloc/free-shaped API (the paper's motivating KV stores and databases
/// are mostly C/C++ codebases).
///
/// Model: create a pod once, attach each (simulated) process, then *bind*
/// each worker thread. After binding, cxlalloc_malloc/cxlalloc_free operate
/// on the calling thread's context with no handles to pass around.
/// Offsets, not raw pointers, cross process boundaries (PC-S); use
/// cxlalloc_ptr to dereference locally (PC-T enforced in checked mode).

#pragma once

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct cxlalloc_pod cxlalloc_pod_t;
typedef struct cxlalloc_process cxlalloc_process_t;

/// Pod/heap creation options. Zero-initialize then override; any field
/// left 0 takes the library default.
typedef struct cxlalloc_options {
    uint32_t small_slabs;       /* 32 KiB slabs for 8 B-1 KiB blocks   */
    uint32_t large_slabs;       /* 512 KiB slabs for 1 KiB-512 KiB     */
    uint32_t huge_regions;      /* address regions for >512 KiB        */
    uint64_t huge_region_size;  /* bytes per huge region               */
    int coherence;              /* 0 full HWcc, 1 partial, 2 none/mCAS */
    int nonrecoverable;         /* 1 disables the redo-record protocol */
    int checked_mappings;       /* 1 enforces PC-T per access          */
} cxlalloc_options_t;

/// Creates a pod with one cxlalloc heap. NULL options = all defaults.
/// Returns NULL on invalid options.
cxlalloc_pod_t* cxlalloc_pod_create(const cxlalloc_options_t* options);

/// Destroys the pod. All processes must be detached and threads unbound.
void cxlalloc_pod_destroy(cxlalloc_pod_t* pod);

/// Attaches a sharing process (reservations, fault handler, metadata
/// mappings). Returns NULL when the pod's process limit is reached.
cxlalloc_process_t* cxlalloc_process_attach(cxlalloc_pod_t* pod);

/// Releases a process handle obtained from cxlalloc_process_attach. The
/// pod-side process state lives on (a real crashed process's heap memory
/// must stay reachable); only the handle is freed. All threads bound to
/// the process must be unbound first.
void cxlalloc_process_detach(cxlalloc_process_t* process);

/// Binds the CALLING thread to @p process: allocates a pod-global thread
/// slot and thread-local context. Returns the thread id (>0), or 0 when no
/// slots are free or the thread is already bound.
uint16_t cxlalloc_thread_bind(cxlalloc_process_t* process);

/// Releases the calling thread's slot (clean exit).
void cxlalloc_thread_unbind(void);

/// Adopts crashed slot @p tid on the calling thread and runs recovery.
/// The calling thread must be unbound. Returns @p tid, or 0 on failure.
uint16_t cxlalloc_thread_adopt(cxlalloc_process_t* process, uint16_t tid);

/// Allocates @p size bytes from the calling thread's heap. Returns the
/// allocation's heap offset (stable across processes), or 0 on exhaustion.
uint64_t cxlalloc_malloc(size_t size);

/// Frees an allocation by offset (works for any thread/process).
void cxlalloc_free(uint64_t offset);

/// Resolves @p offset to a pointer in this process, valid for @p len
/// bytes. Never returns NULL for live heap offsets.
void* cxlalloc_ptr(uint64_t offset, size_t len);

/// Runs the huge heap's asynchronous reclamation pass for this thread.
void cxlalloc_maintain(void);

/// Heap statistics snapshot.
typedef struct cxlalloc_stats {
    uint64_t committed_bytes;  /* PSS analog                      */
    uint64_t hwcc_bytes;       /* coherent metadata footprint     */
    uint32_t small_slabs_used;
    uint32_t large_slabs_used;
    uint32_t huge_live;
} cxlalloc_stats_t;

/// Fills @p out from the calling thread's view. Returns 0 on success.
int cxlalloc_stats_get(cxlalloc_stats_t* out);

#ifdef __cplusplus
} /* extern "C" */
#endif
