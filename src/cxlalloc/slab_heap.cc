#include "cxlalloc/slab_heap.h"

#include <bit>
#include <vector>

#include "common/assert.h"
#include "common/cacheline.h"
#include "common/test_faults.h"
#include "pod/pod.h"
#include "pod/process.h"

namespace cxlalloc {

using cxlcommon::align_up;
using cxlsync::DcasWord;

namespace {

std::uint64_t
class_size_impl(bool large, std::uint32_t cls)
{
    return large ? large_class_size(cls) : small_class_size(cls);
}

std::uint32_t
class_for_impl(bool large, std::uint64_t size)
{
    return large ? large_class_for(size) : small_class_for(size);
}

} // namespace

SlabHeap::SlabHeap(const Layout* layout, bool large,
                   cxlsync::DetectableCas* dcas, RecoveryLog* log)
    : layout_(layout), large_(large), dcas_(dcas), log_(log),
      unsized_limit_(layout->config().unsized_limit)
{
    const Config& cfg = layout->config();
    if (large) {
        num_slabs_ = cfg.large_slabs;
        num_classes_ = kNumLargeClasses;
        slab_size_ = kLargeSlabSize;
        len_word_ = layout->large_len();
        free_word_ = layout->large_free();
        data_base_ = layout->large_data();
        swcc_base_ = layout->large_swcc_desc(0);
        desc_stride_ = Layout::kLargeDescStride;
        hwcc_base_ = layout->large_hwcc_desc(0);
        local_base_ = layout->large_local(0);
    } else {
        num_slabs_ = cfg.small_slabs;
        num_classes_ = kNumSmallClasses;
        slab_size_ = kSmallSlabSize;
        len_word_ = layout->small_len();
        free_word_ = layout->small_free();
        data_base_ = layout->small_data();
        swcc_base_ = layout->small_swcc_desc(0);
        desc_stride_ = Layout::kSmallDescStride;
        hwcc_base_ = layout->small_hwcc_desc(0);
        local_base_ = layout->small_local(0);
    }
}

// ---------------------------------------------------------------- accessors

cxl::HeapOffset
SlabHeap::desc(std::uint32_t slab) const
{
    CXL_ASSERT(slab < num_slabs_, "slab index out of range");
    return swcc_base_ + static_cast<cxl::HeapOffset>(slab) * desc_stride_;
}

cxl::HeapOffset
SlabHeap::hwcc(std::uint32_t slab) const
{
    CXL_ASSERT(slab < num_slabs_, "slab index out of range");
    return hwcc_base_ + static_cast<cxl::HeapOffset>(slab) * 8;
}

cxl::HeapOffset
SlabHeap::slab_data(std::uint32_t slab) const
{
    return data_base_ + static_cast<cxl::HeapOffset>(slab) * slab_size_;
}

std::uint32_t
SlabHeap::next_raw(cxl::MemSession& mem, std::uint32_t slab)
{
    return mem.load<std::uint32_t>(desc(slab) + DescField::kNext);
}

void
SlabHeap::set_next_raw(cxl::MemSession& mem, std::uint32_t slab,
                       std::uint32_t raw)
{
    mem.store<std::uint32_t>(desc(slab) + DescField::kNext, raw);
}

std::uint32_t
SlabHeap::prev_raw(cxl::MemSession& mem, std::uint32_t slab)
{
    return mem.load<std::uint32_t>(desc(slab) + 12);
}

void
SlabHeap::set_prev_raw(cxl::MemSession& mem, std::uint32_t slab,
                       std::uint32_t raw)
{
    mem.store<std::uint32_t>(desc(slab) + 12, raw);
}

cxl::ThreadId
SlabHeap::owner(cxl::MemSession& mem, std::uint32_t slab)
{
    return mem.load<cxl::ThreadId>(desc(slab) + DescField::kOwner);
}

void
SlabHeap::set_owner(cxl::MemSession& mem, std::uint32_t slab,
                    cxl::ThreadId tid)
{
    mem.store<cxl::ThreadId>(desc(slab) + DescField::kOwner, tid);
}

std::uint8_t
SlabHeap::class_biased(cxl::MemSession& mem, std::uint32_t slab)
{
    return mem.load<std::uint8_t>(desc(slab) + DescField::kClass);
}

void
SlabHeap::set_class_biased(cxl::MemSession& mem, std::uint32_t slab,
                           std::uint8_t biased)
{
    mem.store<std::uint8_t>(desc(slab) + DescField::kClass, biased);
}

SlabState
SlabHeap::state(cxl::MemSession& mem, std::uint32_t slab)
{
    return static_cast<SlabState>(
        mem.load<std::uint8_t>(desc(slab) + DescField::kState));
}

void
SlabHeap::set_state(cxl::MemSession& mem, std::uint32_t slab, SlabState s)
{
    mem.store<std::uint8_t>(desc(slab) + DescField::kState,
                            static_cast<std::uint8_t>(s));
}

void
SlabHeap::flush_desc(cxl::MemSession& mem, std::uint32_t slab)
{
    // Write back only the descriptor lines this thread dirtied — 1 line
    // instead of 9 in the common publication (the owner already knows
    // what it wrote; paper §3.2.2 generalized). The publish oracle in
    // tests/sched/test_sched_swcc.cc and litmus shape SwccPublishDirtyOnly
    // guard this elision: the full descriptor range must be clean at the
    // publishing CAS.
    mem.flush_dirty(desc(slab), desc_stride_);
    // A deferred local-op record (Detach/Disown/FreeLocal/...) rides this
    // publication's fence instead of paying its own — guarded by the
    // RecordFlushOracle suites in tests/sched/test_sched_record.cc.
    log_->flush_pending(mem);
    mem.fence();
}

// ------------------------------------------------------------------- bitset

std::uint32_t
SlabHeap::blocks_of(std::uint32_t cls) const
{
    return static_cast<std::uint32_t>(slab_size_ /
                                      class_size_impl(large_, cls));
}

std::uint32_t
SlabHeap::bitset_words(std::uint32_t cls) const
{
    return (blocks_of(cls) + 63) / 64;
}

std::uint32_t
SlabHeap::free_blocks(cxl::MemSession& mem, std::uint32_t slab)
{
    return mem.load<std::uint16_t>(desc(slab) + DescField::kFree);
}

void
SlabHeap::set_free_blocks(cxl::MemSession& mem, std::uint32_t slab,
                          std::uint32_t count)
{
    CXL_ASSERT(count <= 0xffff, "free-block count exceeds field width");
    mem.store<std::uint16_t>(desc(slab) + DescField::kFree,
                             static_cast<std::uint16_t>(count));
}

void
SlabHeap::bitset_fill(cxl::MemSession& mem, std::uint32_t slab,
                      std::uint32_t cls)
{
    cxl::HeapOffset base = desc(slab) + DescField::kBitset;
    std::uint32_t blocks = blocks_of(cls);
    std::uint32_t words = bitset_words(cls);
    for (std::uint32_t w = 0; w < words; w++) {
        std::uint32_t lo = w * 64;
        std::uint64_t value;
        if (blocks >= lo + 64) {
            value = ~std::uint64_t{0};
        } else if (blocks > lo) {
            value = (std::uint64_t{1} << (blocks - lo)) - 1;
        } else {
            value = 0;
        }
        mem.store<std::uint64_t>(base + w * 8, value);
    }
    mem.store<std::uint16_t>(desc(slab) + DescField::kHint, 0);
    set_free_blocks(mem, slab, blocks);
}

std::uint32_t
SlabHeap::bitset_peek(cxl::MemSession& mem, std::uint32_t slab,
                      std::uint32_t cls, bool advance_hint)
{
    cxl::HeapOffset d = desc(slab);
    std::uint32_t words = bitset_words(cls);
    std::uint32_t hint = mem.load<std::uint16_t>(d + DescField::kHint);
    for (std::uint32_t w = hint; w < words; w++) {
        std::uint64_t word = mem.load<std::uint64_t>(d + DescField::kBitset +
                                                     w * 8);
        if (word != 0) {
            if (advance_hint && w != hint) {
                mem.store<std::uint16_t>(d + DescField::kHint,
                                         static_cast<std::uint16_t>(w));
            }
            return w * 64 + std::countr_zero(word);
        }
    }
    return kNoBlock;
}

std::uint32_t
SlabHeap::bitset_clear(cxl::MemSession& mem, std::uint32_t slab,
                       std::uint32_t block)
{
    cxl::HeapOffset at = desc(slab) + DescField::kBitset + (block / 64) * 8;
    std::uint64_t word = mem.load<std::uint64_t>(at);
    std::uint64_t mask = std::uint64_t{1} << (block % 64);
    std::uint32_t free = free_blocks(mem, slab);
    // Idempotent redo may replay a clear that already landed: only touch
    // the counter when the bit actually flips.
    if ((word & mask) != 0) {
        mem.store<std::uint64_t>(at, word & ~mask);
        CXL_ASSERT(free > 0, "free-block counter underflow");
        free--;
        set_free_blocks(mem, slab, free);
    }
    return free;
}

bool
SlabHeap::bitset_test(cxl::MemSession& mem, std::uint32_t slab,
                      std::uint32_t block)
{
    cxl::HeapOffset at = desc(slab) + DescField::kBitset + (block / 64) * 8;
    return (mem.load<std::uint64_t>(at) >> (block % 64)) & 1;
}

std::uint32_t
SlabHeap::bitset_set(cxl::MemSession& mem, std::uint32_t slab,
                     std::uint32_t block)
{
    cxl::HeapOffset d = desc(slab);
    cxl::HeapOffset at = d + DescField::kBitset + (block / 64) * 8;
    std::uint64_t word = mem.load<std::uint64_t>(at);
    std::uint64_t mask = std::uint64_t{1} << (block % 64);
    std::uint32_t free = free_blocks(mem, slab);
    if ((word & mask) == 0) {
        mem.store<std::uint64_t>(at, word | mask);
        free++;
        set_free_blocks(mem, slab, free);
    }
    // Keep the scan hint conservative: no set bit below word `hint`.
    std::uint16_t hint = mem.load<std::uint16_t>(d + DescField::kHint);
    if (block / 64 < hint) {
        mem.store<std::uint16_t>(d + DescField::kHint,
                                 static_cast<std::uint16_t>(block / 64));
    }
    return free;
}

bool
SlabHeap::bitset_none(cxl::MemSession& mem, std::uint32_t slab,
                      std::uint32_t cls)
{
    cxl::HeapOffset base = desc(slab) + DescField::kBitset;
    std::uint32_t words = bitset_words(cls);
    for (std::uint32_t w = 0; w < words; w++) {
        if (mem.load<std::uint64_t>(base + w * 8) != 0) {
            return false;
        }
    }
    return true;
}

std::uint32_t
SlabHeap::bitset_count(cxl::MemSession& mem, std::uint32_t slab,
                       std::uint32_t cls)
{
    cxl::HeapOffset base = desc(slab) + DescField::kBitset;
    std::uint32_t words = bitset_words(cls);
    std::uint32_t total = 0;
    for (std::uint32_t w = 0; w < words; w++) {
        total += std::popcount(mem.load<std::uint64_t>(base + w * 8));
    }
    return total;
}

// -------------------------------------------------------------- local lists

cxl::HeapOffset
SlabHeap::local_row(cxl::ThreadId tid) const
{
    return local_base_ + static_cast<cxl::HeapOffset>(tid) *
                             Layout::kLocalStride;
}

cxl::HeapOffset
SlabHeap::unsized_head_off(cxl::ThreadId tid) const
{
    return local_row(tid);
}

cxl::HeapOffset
SlabHeap::sized_head_off(cxl::ThreadId tid, std::uint32_t cls) const
{
    CXL_ASSERT(cls < num_classes_, "class out of range");
    return local_row(tid) + 4 + static_cast<cxl::HeapOffset>(cls) * 4;
}

cxl::HeapOffset
SlabHeap::unsized_count_off(cxl::ThreadId tid) const
{
    return local_row(tid) + 4 + static_cast<cxl::HeapOffset>(num_classes_) * 4;
}

void
SlabHeap::push_sized(cxl::MemSession& mem, std::uint32_t cls,
                     std::uint32_t slab)
{
    cxl::HeapOffset head = sized_head_off(mem.tid(), cls);
    std::uint32_t old = mem.load<std::uint32_t>(head);
    set_next_raw(mem, slab, old);
    set_prev_raw(mem, slab, 0);
    if (old != 0) {
        set_prev_raw(mem, old - 1, slab + 1);
    }
    mem.store<std::uint32_t>(head, slab + 1);
    set_state(mem, slab, SlabState::TlSized);
}

void
SlabHeap::remove_sized(cxl::MemSession& mem, std::uint32_t cls,
                       std::uint32_t slab)
{
    std::uint32_t p = prev_raw(mem, slab);
    std::uint32_t n = next_raw(mem, slab);
    if (p != 0) {
        set_next_raw(mem, p - 1, n);
    } else {
        mem.store<std::uint32_t>(sized_head_off(mem.tid(), cls), n);
    }
    if (n != 0) {
        set_prev_raw(mem, n - 1, p);
    }
    set_next_raw(mem, slab, 0);
    set_prev_raw(mem, slab, 0);
}

void
SlabHeap::push_unsized(cxl::MemSession& mem, std::uint32_t slab)
{
    cxl::HeapOffset head = unsized_head_off(mem.tid());
    set_next_raw(mem, slab, mem.load<std::uint32_t>(head));
    mem.store<std::uint32_t>(head, slab + 1);
    set_state(mem, slab, SlabState::TlUnsized);
    cxl::HeapOffset cnt = unsized_count_off(mem.tid());
    mem.store<std::uint32_t>(cnt, mem.load<std::uint32_t>(cnt) + 1);
}

std::uint32_t
SlabHeap::pop_unsized(cxl::MemSession& mem)
{
    cxl::HeapOffset head = unsized_head_off(mem.tid());
    std::uint32_t raw = mem.load<std::uint32_t>(head);
    CXL_ASSERT(raw != 0, "pop from empty unsized list");
    std::uint32_t slab = raw - 1;
    mem.store<std::uint32_t>(head, next_raw(mem, slab));
    set_next_raw(mem, slab, 0);
    cxl::HeapOffset cnt = unsized_count_off(mem.tid());
    std::uint32_t c = mem.load<std::uint32_t>(cnt);
    mem.store<std::uint32_t>(cnt, c == 0 ? 0 : c - 1);
    return slab;
}

bool
SlabHeap::on_unsized_list(cxl::MemSession& mem, std::uint32_t slab)
{
    std::uint32_t raw = mem.load<std::uint32_t>(unsized_head_off(mem.tid()));
    std::uint32_t steps = 0;
    while (raw != 0 && steps++ <= num_slabs_) {
        if (raw - 1 == slab) {
            return true;
        }
        raw = next_raw(mem, raw - 1);
    }
    return false;
}

// --------------------------------------------------------------- operations

bool
SlabHeap::contains(cxl::HeapOffset offset) const
{
    return offset >= data_base_ &&
           offset < data_base_ +
                        static_cast<cxl::HeapOffset>(num_slabs_) * slab_size_;
}

std::uint32_t
SlabHeap::length(cxl::MemSession& mem)
{
    return DcasWord::value(mem.atomic_load64(len_word_));
}

cxl::HeapOffset
SlabHeap::allocate(pod::ThreadContext& ctx, ThreadState& ts,
                   std::uint64_t size)
{
    cxl::MemSession& mem = ctx.mem();
    std::uint32_t cls = class_for_impl(large_, size);
    std::uint32_t headraw = mem.load<std::uint32_t>(
        sized_head_off(mem.tid(), cls));
    if (headraw == 0) {
        if (!refill(ctx, ts, cls)) {
            return 0; // heap exhausted
        }
        headraw = mem.load<std::uint32_t>(sized_head_off(mem.tid(), cls));
        CXL_ASSERT(headraw != 0, "refill left sized list empty");
    }
    std::uint32_t slab = headraw - 1;
    std::uint32_t block = bitset_peek(mem, slab, cls, /*advance_hint=*/true);
    CXL_ASSERT(block != kNoBlock, "sized list contained a full slab");

    // Local operation: the record needs no flush or fence (process-crash
    // recovery writes the cache back; see RecoveryLog's discipline note).
    log_->log_local(mem, OpRecord{.op = Op::Alloc,
                                  .large_heap = large_,
                                  .aux = static_cast<std::uint16_t>(block),
                                  .version = ts.version,
                                  .index = slab});
    ctx.maybe_crash(crashpoint::kAfterRecord);
    std::uint32_t left = bitset_clear(mem, slab, block);
    ctx.maybe_crash(crashpoint::kMidAlloc);
    // The counter answers the post-alloc fullness check in one load where
    // bitset_none used to rescan every word.
    CXL_PARANOID_ASSERT(left == bitset_count(mem, slab, cls),
                        "free-block counter diverged from bitset");
    if (inst_.registry != nullptr) {
        inst_.registry->shard(mem.tid()).add(inst_.fullcheck_fast);
    }
    if (left == 0) {
        // Maintain the invariant that sized lists hold only non-full slabs.
        full_transition(ctx, slab, cls);
    }
    return slab_data(slab) + static_cast<cxl::HeapOffset>(block) *
                                 class_size_impl(large_, cls);
}

bool
SlabHeap::refill(pod::ThreadContext& ctx, ThreadState& ts, std::uint32_t cls)
{
    cxl::MemSession& mem = ctx.mem();
    // Transfer sources, in order (paper §3.1.1): thread-local unsized free
    // list, global free list, heap length (extension).
    while (true) {
        std::uint32_t uh = mem.load<std::uint32_t>(
            unsized_head_off(mem.tid()));
        if (uh != 0) {
            init_from_unsized(ctx, uh - 1, cls);
            return true;
        }
        if (pop_global(ctx, ts)) {
            continue; // slab landed on the unsized list
        }
        if (extend(ctx, ts)) {
            continue;
        }
        if (scavenge_warm_slab(ctx, ts)) {
            continue; // reclaimed an idle empty slab from another class
        }
        return false;
    }
}

bool
SlabHeap::scavenge_warm_slab(pod::ThreadContext& ctx, ThreadState& ts)
{
    // Under memory pressure, give up the per-class warm slabs (kept to
    // avoid re-init thrash): any completely-empty slab on one of our sized
    // lists can serve another class.
    cxl::MemSession& mem = ctx.mem();
    for (std::uint32_t cls = 0; cls < num_classes_; cls++) {
        std::uint32_t raw =
            mem.load<std::uint32_t>(sized_head_off(mem.tid(), cls));
        std::uint32_t steps = 0;
        while (raw != 0 && steps++ <= num_slabs_) {
            std::uint32_t slab = raw - 1;
            raw = next_raw(mem, slab);
            // Emptiness via the free counter: one load per candidate slab
            // instead of an O(words) popcount over its whole bitset.
            if (free_blocks(mem, slab) == blocks_of(cls)) {
                CXL_PARANOID_ASSERT(
                    bitset_count(mem, slab, cls) == blocks_of(cls),
                    "free-block counter diverged from bitset");
                log_->log_local(mem, OpRecord{.op = Op::FreeLocal,
                                              .large_heap = large_,
                                              .aux = 0,
                                              .version = ts.version,
                                              .index = slab});
                remove_sized(mem, cls, slab);
                set_class_biased(mem, slab, 0);
                push_unsized(mem, slab);
                if (inst_.registry != nullptr) {
                    inst_.registry->shard(mem.tid()).add(inst_.scavenges);
                }
                return true;
            }
        }
    }
    return false;
}

void
SlabHeap::init_from_unsized(pod::ThreadContext& ctx, std::uint32_t slab,
                            std::uint32_t cls)
{
    cxl::MemSession& mem = ctx.mem();
    log_->log(mem, OpRecord{.op = Op::Init,
                            .large_heap = large_,
                            .aux = static_cast<std::uint16_t>(cls),
                            .version = 0, // no CAS in this transition
                            .index = slab});
    ctx.maybe_crash(crashpoint::kAfterRecord);
    std::uint32_t popped = pop_unsized(mem);
    CXL_ASSERT(popped == slab, "unsized head changed underfoot");
    ctx.maybe_crash(crashpoint::kMidInit);
    set_owner(mem, slab, mem.tid());
    set_class_biased(mem, slab, static_cast<std::uint8_t>(cls + 1));
    bitset_fill(mem, slab, cls);
    // Reset the remote-free down-counter to the block count. A plain store
    // suffices: the slab is unlinked and no other thread can reference it.
    mem.atomic_store64(hwcc(slab), DcasWord::pack(blocks_of(cls), 0, 0));
    ctx.maybe_crash(crashpoint::kMidInit);
    push_sized(mem, cls, slab);
}

bool
SlabHeap::pop_global(pod::ThreadContext& ctx, ThreadState& ts)
{
    cxl::MemSession& mem = ctx.mem();
    while (true) {
        std::uint64_t word = mem.atomic_load64(free_word_);
        std::uint32_t headraw = DcasWord::value(word);
        if (headraw == 0) {
            return false;
        }
        std::uint32_t slab = headraw - 1;
        // SWcc read protocol (§3.2.2): flush before loading another
        // thread's flushed next pointer. A stale value would be caught by
        // the CAS on the list head failing.
        mem.flush(desc(slab) + DescField::kNext, 4);
        std::uint32_t next = next_raw(mem, slab);
        std::uint16_t ver = ts.next_version();
        log_->log(mem, OpRecord{.op = Op::PopGlobal,
                                .large_heap = large_,
                                .aux = 0,
                                .version = ver,
                                .index = slab});
        ctx.maybe_crash(crashpoint::kAfterRecord);
        auto r = dcas_->try_cas(mem, free_word_, headraw, next, ver);
        if (r.success) {
            ctx.maybe_crash(crashpoint::kAfterDcas);
            acquire_to_unsized(ctx, slab);
            return true;
        }
    }
}

bool
SlabHeap::extend(pod::ThreadContext& ctx, ThreadState& ts)
{
    cxl::MemSession& mem = ctx.mem();
    while (true) {
        std::uint64_t word = mem.atomic_load64(len_word_);
        std::uint32_t len = DcasWord::value(word);
        if (len >= num_slabs_) {
            return false;
        }
        std::uint16_t ver = ts.next_version();
        log_->log(mem, OpRecord{.op = Op::Extend,
                                .large_heap = large_,
                                .aux = 0,
                                .version = ver,
                                .index = len});
        ctx.maybe_crash(crashpoint::kAfterRecord);
        auto r = dcas_->try_cas(mem, len_word_, len, len + 1, ver);
        if (r.success) {
            std::uint32_t slab = len;
            ctx.maybe_crash(crashpoint::kAfterDcas);
            // The new slab needs three mappings (descriptor pages + data;
            // the HWcc word lives in the eagerly-mapped sync region). Other
            // processes install theirs lazily via the fault handler.
            install_slab_mappings(ctx, slab);
            acquire_to_unsized(ctx, slab);
            return true;
        }
    }
}

void
SlabHeap::install_slab_mappings(pod::ThreadContext& ctx, std::uint32_t slab)
{
    pod::MappedRange dm = desc_mapping(slab);
    ctx.process().install_mapping(dm.start, dm.len);
    ctx.process().install_mapping(slab_data(slab), slab_size_);
}

pod::MappedRange
SlabHeap::desc_mapping(std::uint32_t slab) const
{
    cxl::HeapOffset start = desc(slab) & ~(cxl::kPageSize - 1);
    cxl::HeapOffset end =
        align_up(desc(slab) + desc_stride_, cxl::kPageSize);
    return pod::MappedRange{start, end - start};
}

void
SlabHeap::acquire_to_unsized(pod::ThreadContext& ctx, std::uint32_t slab)
{
    cxl::MemSession& mem = ctx.mem();
    // Back the slab again in case it was decommitted on the global list.
    ctx.process().pod().device().note_committed(slab_data(slab), slab_size_);
    set_owner(mem, slab, mem.tid());
    set_class_biased(mem, slab, 0);
    push_unsized(mem, slab);
}

void
SlabHeap::full_transition(pod::ThreadContext& ctx, std::uint32_t slab,
                          std::uint32_t cls)
{
    cxl::MemSession& mem = ctx.mem();
    std::uint32_t remote = dcas_->read(mem, hwcc(slab));
    if (remote == blocks_of(cls)) {
        // No remote frees yet: keep ownership but unlink (detached state).
        // A later local free will relink it to the sized list.
        // Deferred: flush_desc below folds the record into its fence.
        log_->log_local(mem, OpRecord{.op = Op::Detach,
                                      .large_heap = large_,
                                      .aux = static_cast<std::uint16_t>(cls),
                                      .version = 0,
                                      .index = slab});
        ctx.maybe_crash(crashpoint::kAfterRecord);
        remove_sized(mem, cls, slab);
        set_state(mem, slab, SlabState::Detached);
        ctx.maybe_crash(crashpoint::kMidDetach);
        // Ownership may change later (steal at counter zero): flush so no
        // dirty line of ours can clobber the stealer's writes.
        flush_desc(mem, slab);
    } else {
        // Mixed local/remote frees: give the slab up so every future free
        // takes the remote path and the whole slab is eventually stolen.
        log_->log_local(mem, OpRecord{.op = Op::Disown,
                                      .large_heap = large_,
                                      .aux = static_cast<std::uint16_t>(cls),
                                      .version = 0,
                                      .index = slab});
        ctx.maybe_crash(crashpoint::kAfterRecord);
        remove_sized(mem, cls, slab);
        set_owner(mem, slab, cxl::kNoThread);
        set_state(mem, slab, SlabState::Disowned);
        ctx.maybe_crash(crashpoint::kMidDetach);
        flush_desc(mem, slab);
    }
}

bool
SlabHeap::deallocate(pod::ThreadContext& ctx, ThreadState& ts,
                     cxl::HeapOffset offset)
{
    cxl::MemSession& mem = ctx.mem();
    CXL_ASSERT(contains(offset), "free of non-heap offset");
    auto slab = static_cast<std::uint32_t>((offset - data_base_) /
                                           slab_size_);
    // The owner field may be read from our (possibly stale) cache without
    // flushing — the paper's §3.2.2 case analysis shows every outcome of a
    // stale read is safe.
    cxl::ThreadId who = owner(mem, slab);
    if (who == mem.tid()) {
        std::uint32_t cls = class_biased(mem, slab);
        CXL_ASSERT(cls != 0, "freeing into classless slab");
        auto block = static_cast<std::uint32_t>(
            (offset - slab_data(slab)) / class_size_impl(large_, cls - 1));
        free_local(ctx, ts, slab, block);
        return false;
    }
    free_remote(ctx, ts, slab);
    return true;
}

std::uint32_t
SlabHeap::deallocate_batch(pod::ThreadContext& ctx, ThreadState& ts,
                           const cxl::HeapOffset* offsets, std::uint32_t n)
{
    cxl::MemSession& mem = ctx.mem();
    std::uint32_t remote = 0;
    if (mem.device()->mode() != cxl::CoherenceMode::NoHwcc || n <= 1) {
        // Coherent CAS costs no device round trip: nothing to amortize.
        for (std::uint32_t i = 0; i < n; i++) {
            remote += deallocate(ctx, ts, offsets[i]) ? 1 : 0;
        }
        return remote;
    }
    std::vector<cxl::HeapOffset> pending(offsets, offsets + n);
    cxl::McasBackoff backoff;
    while (!pending.empty()) {
        std::vector<cxl::HeapOffset> retry;
        // Offsets needing serial work — final decrements (counter would
        // hit zero and steal) and frees of slabs we own — drain AFTER the
        // ring empties: the serial path's own mCAS asserts an empty ring.
        std::vector<cxl::HeapOffset> serial;
        std::uint32_t staged_slab[cxl::kNmpRingSlots];
        cxl::HeapOffset staged_off[cxl::kNmpRingSlots];
        cxl::McasOperand staged_op[cxl::kNmpRingSlots];
        std::uint16_t last_ver = 0;
        std::uint32_t staged = 0;
        for (cxl::HeapOffset offset : pending) {
            auto slab = static_cast<std::uint32_t>((offset - data_base_) /
                                                   slab_size_);
            // Re-check ownership every round: a steal in an earlier
            // round's serial phase may have made this slab local.
            if (owner(mem, slab) == mem.tid()) {
                serial.push_back(offset);
                continue;
            }
            if (staged == cxl::kNmpRingSlots) {
                retry.push_back(offset);
                continue;
            }
            // One operand per target pod-wide (Fig. 6(b)): a same-slab
            // duplicate this round would doom itself against our own
            // earlier slot.
            bool dup = false;
            for (std::uint32_t k = 0; k < staged; k++) {
                dup |= staged_slab[k] == slab;
            }
            if (dup) {
                retry.push_back(offset);
                continue;
            }
            std::uint32_t cur = dcas_->read(mem, hwcc(slab));
            CXL_ASSERT(cur > 0,
                       "remote-free counter underflow (double free?)");
            if (cur == 1) {
                serial.push_back(offset);
                continue;
            }
            // cur >= 2, so a successful staged CAS lands a counter >= 1:
            // a batched operand can never be the stealing decrement.
            std::uint16_t ver = ts.next_version();
            cxl::McasOperand op;
            cxlsync::DetectableCas::Result fail;
            if (!dcas_->stage(mem, hwcc(slab), cur, cur - 1, ver, &op,
                              &fail)) {
                retry.push_back(offset); // counter moved under us
                continue;
            }
            staged_op[staged] = op;
            staged_slab[staged] = slab;
            staged_off[staged] = offset;
            last_ver = ver;
            staged++;
        }
        if (staged > 0) {
            // Post only after the scan: stage() records help via the
            // serial mCAS path, which requires an empty ring.
            for (std::uint32_t k = 0; k < staged; k++) {
                bool posted = mem.mcas_post(staged_op[k]);
                CXL_ASSERT(posted, "ring rejected a ring-bounded batch");
            }
            ctx.maybe_crash(crashpoint::kMidBatchStage);
            // One record covers the whole ring; per-operand redo state is
            // the ring itself (device memory, survives the crash).
            log_->log(mem,
                      OpRecord{.op = Op::FreeRemoteBatch,
                               .large_heap = large_,
                               .aux = static_cast<std::uint16_t>(staged),
                               .version = last_ver,
                               .index = staged_slab[0]});
            ctx.maybe_crash(crashpoint::kMidBatchDoorbell);
            mem.mcas_doorbell();
            ctx.maybe_crash(crashpoint::kMidBatchDrain);
            bool conflicted = false;
            for (std::uint32_t k = 0; k < staged; k++) {
                cxl::McasResult r;
                bool polled = mem.mcas_poll(&r);
                CXL_ASSERT(polled, "doorbell executed fewer ops than staged");
                if (r.success) {
                    remote++;
                } else {
                    conflicted |= r.conflict;
                    retry.push_back(staged_off[k]);
                }
            }
            if (conflicted) {
                mem.charge(backoff.next_ns());
            } else {
                backoff.reset();
            }
        }
        for (cxl::HeapOffset offset : serial) {
            auto slab = static_cast<std::uint32_t>((offset - data_base_) /
                                                   slab_size_);
            if (owner(mem, slab) == mem.tid()) {
                remote += deallocate(ctx, ts, offset) ? 1 : 0;
            } else {
                free_remote(ctx, ts, slab);
                remote++;
            }
        }
        pending = std::move(retry);
    }
    return remote;
}

void
SlabHeap::free_local(pod::ThreadContext& ctx, ThreadState& ts,
                     std::uint32_t slab, std::uint32_t block)
{
    cxl::MemSession& mem = ctx.mem();
    std::uint32_t cls = class_biased(mem, slab) - 1;
    CXL_ASSERT(!bitset_test(mem, slab, block), "double free (local)");
    log_->log_local(mem, OpRecord{.op = Op::FreeLocal,
                                  .large_heap = large_,
                                  .aux = static_cast<std::uint16_t>(block),
                                  .version = ts.version,
                                  .index = slab});
    ctx.maybe_crash(crashpoint::kAfterRecord);
    SlabState st = state(mem, slab);
    CXL_ASSERT(st == SlabState::TlSized || st == SlabState::Detached,
               "local free into slab in unexpected state");
    std::uint32_t free = bitset_set(mem, slab, block);
    ctx.maybe_crash(crashpoint::kMidFreeLocal);
    CXL_PARANOID_ASSERT(free == bitset_count(mem, slab, cls),
                        "free-block counter diverged from bitset");
    if (st == SlabState::Detached) {
        // Previously full: relink so it can serve allocations again.
        push_sized(mem, cls, slab);
    } else if (free == blocks_of(cls) &&
               (next_raw(mem, slab) != 0 || prev_raw(mem, slab) != 0)) {
        // Slab is now completely empty and the class has other slabs:
        // recycle it as unsized. (Keeping the last slab warm avoids
        // re-initializing it on every alloc/free alternation.)
        remove_sized(mem, cls, slab);
        set_class_biased(mem, slab, 0);
        push_unsized(mem, slab);
        trim_unsized(ctx, ts);
    }
}

void
SlabHeap::free_remote(pod::ThreadContext& ctx, ThreadState& ts,
                      std::uint32_t slab)
{
    cxl::MemSession& mem = ctx.mem();
    while (true) {
        std::uint32_t cur = dcas_->read(mem, hwcc(slab));
        CXL_ASSERT(cur > 0, "remote-free counter underflow (double free?)");
        std::uint16_t ver = ts.next_version();
        log_->log(mem, OpRecord{.op = Op::FreeRemote,
                                .large_heap = large_,
                                .aux = 0,
                                .version = ver,
                                .index = slab});
        ctx.maybe_crash(crashpoint::kAfterRecord);
        auto r = dcas_->try_cas(mem, hwcc(slab), cur, cur - 1, ver);
        if (!r.success) {
            continue;
        }
        if (cur - 1 == 0) {
            // Every block was remotely freed: the slab is detached or
            // disowned and unlinked, so stealing needs no coordination
            // with the previous owner (paper §3.2.1).
            ctx.maybe_crash(crashpoint::kMidSteal);
            acquire_to_unsized(ctx, slab);
            trim_unsized(ctx, ts);
        }
        return;
    }
}

void
SlabHeap::trim_unsized(pod::ThreadContext& ctx, ThreadState& ts)
{
    cxl::MemSession& mem = ctx.mem();
    while (mem.load<std::uint32_t>(unsized_count_off(mem.tid())) >
           unsized_limit_) {
        push_global_one(ctx, ts);
    }
}

void
SlabHeap::push_global_one(pod::ThreadContext& ctx, ThreadState& ts)
{
    cxl::MemSession& mem = ctx.mem();
    std::uint32_t slab = pop_unsized(mem);
    set_owner(mem, slab, cxl::kNoThread);
    set_class_biased(mem, slab, 0);
    set_state(mem, slab, SlabState::Global);
    // MADV_REMOVE analog (paper §3.3.1): heap extension is monotonic — the
    // mapping stays — but an empty slab's backing memory returns to the
    // device while it sits on the global free list.
    ctx.process().pod().device().note_decommitted(slab_data(slab),
                                                  slab_size_);
    while (true) {
        std::uint64_t word = mem.atomic_load64(free_word_);
        std::uint32_t headraw = DcasWord::value(word);
        set_next_raw(mem, slab, headraw);
        std::uint16_t ver = ts.next_version();
        // Record + descriptor coalesce into flush_desc's single flush +
        // fence (the record's flush_pending rides the same fence); on a
        // CAS retry only the re-dirtied kNext line and record row are
        // written back again — the owner-cached argument generalized.
        log_->log_local(mem, OpRecord{.op = Op::PushGlobal,
                                      .large_heap = large_,
                                      .aux = 0,
                                      .version = ver,
                                      .index = slab});
        // Ownership transfers to whoever pops: flush + fence first.
        if (!cxlcommon::test_faults::skip_swcc_publish_flush) {
            flush_desc(mem, slab);
        } else {
            // Fault isolation: skip only the DESCRIPTOR flush. The record
            // still goes durable so the publish oracle — not the record
            // oracle — is what catches this variant.
            log_->flush_pending(mem);
            mem.fence();
        }
        ctx.maybe_crash(crashpoint::kMidPushGlobal);
        if (dcas_->try_cas(mem, free_word_, headraw, slab + 1, ver).success) {
            return;
        }
    }
}

bool
SlabHeap::resolve(cxl::MemSession& mem, cxl::HeapOffset offset,
                  pod::MappedRange* out)
{
    // Data region: backed iff the containing slab is below the heap length.
    if (contains(offset)) {
        auto slab = static_cast<std::uint32_t>((offset - data_base_) /
                                               slab_size_);
        if (slab >= length(mem)) {
            return false;
        }
        out->start = slab_data(slab);
        out->len = slab_size_;
        return true;
    }
    // SWcc descriptor region.
    cxl::HeapOffset desc_end =
        swcc_base_ + static_cast<cxl::HeapOffset>(num_slabs_) * desc_stride_;
    if (offset >= swcc_base_ && offset < desc_end) {
        auto slab = static_cast<std::uint32_t>((offset - swcc_base_) /
                                               desc_stride_);
        if (slab >= length(mem)) {
            return false;
        }
        *out = desc_mapping(slab);
        return true;
    }
    return false;
}

// ----------------------------------------------------------------- recovery

void
SlabHeap::recover(pod::ThreadContext& ctx, ThreadState& ts,
                  const OpRecord& record)
{
    cxl::MemSession& mem = ctx.mem();
    std::uint32_t slab = record.index;
    switch (record.op) {
      case Op::Alloc: {
        // The block may or may not have been handed out; the application
        // never saw the pointer, so completing the clear only costs one
        // block (recoverable by the application's own log, paper Table 1
        // "App" strategy).
        std::uint32_t cls = class_biased(mem, slab);
        CXL_ASSERT(cls != 0, "Alloc record against classless slab");
        bitset_clear(mem, slab, record.aux);
        mem.store<std::uint16_t>(desc(slab) + DescField::kHint, 0);
        // A crash (especially Host severity) can surface a counter line
        // and bitset lines from different points in time: the bitset is
        // the durable truth, so rebuild the counter from it.
        std::uint32_t live = bitset_count(mem, slab, cls - 1);
        set_free_blocks(mem, slab, live);
        if (live == 0 && state(mem, slab) == SlabState::TlSized) {
            full_transition(ctx, slab, cls - 1);
        }
        break;
      }
      case Op::Init: {
        std::uint32_t cls = record.aux;
        std::uint32_t uh = mem.load<std::uint32_t>(
            unsized_head_off(mem.tid()));
        if (uh == slab + 1) {
            // Nothing visible happened: rerun the transition.
            init_from_unsized(ctx, slab, cls);
            break;
        }
        if (state(mem, slab) == SlabState::TlSized &&
            class_biased(mem, slab) == cls + 1) {
            // Completed; resync the counter with whatever bitset lines
            // proved durable.
            set_free_blocks(mem, slab, bitset_count(mem, slab, cls));
            break;
        }
        // Popped but not (fully) initialized: since this record is the
        // thread's last operation, no allocation has happened — refilling
        // the bitset is safe.
        set_owner(mem, slab, mem.tid());
        set_class_biased(mem, slab, static_cast<std::uint8_t>(cls + 1));
        bitset_fill(mem, slab, cls);
        mem.atomic_store64(hwcc(slab), DcasWord::pack(blocks_of(cls), 0, 0));
        push_sized(mem, cls, slab);
        break;
      }
      case Op::PopGlobal: {
        if (!dcas_->did_succeed(mem, free_word_, record.version)) {
            break; // CAS never took effect; the allocation was abandoned
        }
        if (!on_unsized_list(mem, slab)) {
            acquire_to_unsized(ctx, slab);
        }
        break;
      }
      case Op::Extend: {
        if (!dcas_->did_succeed(mem, len_word_, record.version)) {
            break;
        }
        install_slab_mappings(ctx, slab);
        if (!on_unsized_list(mem, slab)) {
            acquire_to_unsized(ctx, slab);
        }
        break;
      }
      case Op::Detach: {
        std::uint32_t cls = record.aux;
        if (state(mem, slab) != SlabState::Detached) {
            remove_sized(mem, cls, slab);
            set_state(mem, slab, SlabState::Detached);
        }
        flush_desc(mem, slab);
        break;
      }
      case Op::Disown: {
        std::uint32_t cls = record.aux;
        // No steal can have happened yet (the last block allocated from
        // this slab never escaped the crashed allocate call), so the slab
        // is still ours to repair.
        if (state(mem, slab) == SlabState::TlSized) {
            remove_sized(mem, cls, slab);
        }
        set_owner(mem, slab, cxl::kNoThread);
        set_state(mem, slab, SlabState::Disowned);
        flush_desc(mem, slab);
        break;
      }
      case Op::FreeLocal: {
        std::uint32_t cls = class_biased(mem, slab);
        CXL_ASSERT(cls != 0, "FreeLocal record against classless slab");
        bitset_set(mem, slab, record.aux);
        mem.store<std::uint16_t>(desc(slab) + DescField::kHint, 0);
        set_free_blocks(mem, slab, bitset_count(mem, slab, cls - 1));
        SlabState st = state(mem, slab);
        if (st == SlabState::Detached) {
            push_sized(mem, cls - 1, slab);
        } else if (st == SlabState::TlSized &&
                   free_blocks(mem, slab) == blocks_of(cls - 1) &&
                   (next_raw(mem, slab) != 0 || prev_raw(mem, slab) != 0)) {
            remove_sized(mem, cls - 1, slab);
            set_class_biased(mem, slab, 0);
            push_unsized(mem, slab);
            trim_unsized(ctx, ts);
        }
        break;
      }
      case Op::FreeRemote: {
        if (!dcas_->did_succeed(mem, hwcc(slab), record.version)) {
            // The decrement never landed; the block is still marked
            // allocated. Complete the free now.
            free_remote(ctx, ts, slab);
            break;
        }
        std::uint64_t word = mem.atomic_load64(hwcc(slab));
        if (DcasWord::tid(word) == mem.tid() &&
            DcasWord::version(word) == record.version &&
            DcasWord::value(word) == 0) {
            // Our decrement was the last one: we are the stealer.
            if (!on_unsized_list(mem, slab) &&
                owner(mem, slab) != mem.tid()) {
                acquire_to_unsized(ctx, slab);
                trim_unsized(ctx, ts);
            }
        }
        break;
      }
      case Op::FreeRemoteBatch: {
        // The record only says "a batch was in flight"; the per-operand
        // redo state is the thread's NMP operand ring, which is device
        // memory and survived the crash. Snapshot it, release it (the
        // serial redo path below posts its own operands and requires an
        // empty ring), then redo every decrement that never landed.
        cxl::Nmp& nmp = ctx.process().pod().nmp();
        cxl::NmpSlotView views[cxl::kNmpRingSlots];
        std::uint32_t live =
            nmp.ring_snapshot(mem.tid(), views, cxl::kNmpRingSlots);
        nmp.reset_ring(mem.tid());
        for (std::uint32_t i = 0; i < live; i++) {
            const cxl::NmpSlotView& v = views[i];
            if (v.op.target < hwcc_base_ ||
                (v.op.target - hwcc_base_) / 8 >= num_slabs_) {
                // Staged by a LATER batch of the other heap that crashed
                // before logging its record: that batch never happened.
                continue;
            }
            CXL_ASSERT((v.op.target - hwcc_base_) % 8 == 0,
                       "batched operand misaligned in counter region");
            auto s = static_cast<std::uint32_t>(
                (v.op.target - hwcc_base_) / 8);
            CXL_ASSERT(DcasWord::tid(v.op.swap) == mem.tid(),
                       "foreign operand in adopted ring");
            std::uint16_t ver = DcasWord::version(v.op.swap);
            if (!dcas_->did_succeed(mem, v.op.target, ver)) {
                // The decrement never landed: redo it serially.
                free_remote(ctx, ts, s);
            }
            // else: it landed with a counter >= 1 by construction (final
            // decrements never ride the ring), so no steal to finish.
        }
        break;
      }
      case Op::PushGlobal: {
        if (dcas_->did_succeed(mem, free_word_, record.version)) {
            break; // push landed
        }
        // Slab was popped from our unsized list but never published:
        // finish the push.
        set_owner(mem, slab, cxl::kNoThread);
        set_class_biased(mem, slab, 0);
        set_state(mem, slab, SlabState::Global);
        while (true) {
            std::uint64_t word = mem.atomic_load64(free_word_);
            std::uint32_t headraw = DcasWord::value(word);
            set_next_raw(mem, slab, headraw);
            flush_desc(mem, slab);
            std::uint16_t ver = ts.next_version();
            if (dcas_->try_cas(mem, free_word_, headraw, slab + 1, ver)
                    .success) {
                break;
            }
        }
        break;
      }
      default:
        CXL_PANIC("slab heap asked to recover a non-slab operation");
    }
}

// --------------------------------------------------------------- invariants

void
SlabHeap::check_global_invariants(cxl::MemSession& mem)
{
    std::uint32_t len = length(mem);
    CXL_ASSERT(len <= num_slabs_, "heap length exceeds capacity");
    std::uint64_t word = mem.atomic_load64(free_word_);
    std::uint32_t raw = DcasWord::value(word);
    std::uint32_t steps = 0;
    while (raw != 0) {
        CXL_ASSERT(++steps <= num_slabs_, "global free list is cyclic");
        std::uint32_t slab = raw - 1;
        CXL_ASSERT(slab < len, "global free list references unmapped slab");
        mem.flush(desc(slab), desc_stride_);
        CXL_ASSERT(owner(mem, slab) == cxl::kNoThread,
                   "slab on global free list has an owner");
        CXL_ASSERT(state(mem, slab) == SlabState::Global,
                   "slab on global free list not in Global state");
        raw = next_raw(mem, slab);
    }
}

void
SlabHeap::check_local_invariants(cxl::MemSession& mem)
{
    cxl::ThreadId tid = mem.tid();
    // Unsized list: owned, classless, acyclic; count matches.
    std::uint32_t raw = mem.load<std::uint32_t>(unsized_head_off(tid));
    std::uint32_t count = 0;
    while (raw != 0) {
        CXL_ASSERT(++count <= num_slabs_, "unsized list is cyclic");
        std::uint32_t slab = raw - 1;
        CXL_ASSERT(owner(mem, slab) == tid, "unsized slab not owned");
        CXL_ASSERT(state(mem, slab) == SlabState::TlUnsized,
                   "unsized slab in wrong state");
        raw = next_raw(mem, slab);
    }
    CXL_ASSERT(mem.load<std::uint32_t>(unsized_count_off(tid)) == count,
               "unsized count out of sync");
    // Sized lists: owned, correctly classed, never full, doubly linked.
    for (std::uint32_t cls = 0; cls < num_classes_; cls++) {
        raw = mem.load<std::uint32_t>(sized_head_off(tid, cls));
        std::uint32_t prev = 0;
        std::uint32_t steps = 0;
        while (raw != 0) {
            CXL_ASSERT(++steps <= num_slabs_, "sized list is cyclic");
            std::uint32_t slab = raw - 1;
            CXL_ASSERT(owner(mem, slab) == tid, "sized slab not owned");
            CXL_ASSERT(class_biased(mem, slab) == cls + 1,
                       "sized slab class mismatch");
            CXL_ASSERT(state(mem, slab) == SlabState::TlSized,
                       "sized slab in wrong state");
            CXL_ASSERT(free_blocks(mem, slab) == bitset_count(mem, slab, cls),
                       "free-block counter diverged from bitset");
            CXL_ASSERT(free_blocks(mem, slab) != 0,
                       "sized list contains a full slab");
            CXL_ASSERT(prev_raw(mem, slab) == prev,
                       "sized list prev link broken");
            prev = raw;
            raw = next_raw(mem, slab);
        }
    }
}

void
SlabHeap::set_metrics(obs::MetricsRegistry* registry)
{
    inst_ = Instruments{};
    inst_.registry = registry;
    if (registry == nullptr) {
        return;
    }
    inst_.fullcheck_fast = registry->counter("alloc.fullcheck_fast");
    inst_.scavenges = registry->counter("alloc.scavenges");
}

std::uint32_t
SlabHeap::debug_free_blocks(cxl::MemSession& mem, std::uint32_t slab)
{
    return free_blocks(mem, slab);
}

std::uint32_t
SlabHeap::debug_bitset_count(cxl::MemSession& mem, std::uint32_t slab)
{
    std::uint8_t biased = class_biased(mem, slab);
    CXL_ASSERT(biased != 0, "bitset count of classless slab");
    return bitset_count(mem, slab, biased - 1);
}

std::uint8_t
SlabHeap::debug_class_biased(cxl::MemSession& mem, std::uint32_t slab)
{
    return class_biased(mem, slab);
}

std::uint32_t
SlabHeap::debug_remote_free(cxl::MemSession& mem, std::uint32_t slab)
{
    return dcas_->read(mem, hwcc(slab));
}

cxl::ThreadId
SlabHeap::debug_owner(cxl::MemSession& mem, std::uint32_t slab)
{
    return owner(mem, slab);
}

SlabHeap::Stats
SlabHeap::stats(cxl::MemSession& mem)
{
    Stats s;
    s.length = length(mem);
    s.data_bytes = static_cast<std::uint64_t>(s.length) * slab_size_;
    std::uint32_t raw = DcasWord::value(mem.atomic_load64(free_word_));
    std::uint32_t steps = 0;
    while (raw != 0 && steps <= num_slabs_) {
        steps++;
        raw = next_raw(mem, raw - 1);
    }
    s.global_free = steps;
    return s;
}

} // namespace cxlalloc
