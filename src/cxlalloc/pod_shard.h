/// @file
/// PodShardedAllocator: topology-aware allocation over a multi-device pod.
///
/// One CxlAllocator shard lives in each device window of a window-
/// partitioned pod arena (cxl::DeviceConfig windows/window_bits; see
/// docs/POD_TOPOLOGY.md). All shards share the pod-global thread-id space,
/// so any thread can allocate from, free into, and recover any shard —
/// the placement policy, not a capability wall, is what keeps traffic
/// host-local:
///
///  - First-touch home placement: a thread allocates from its host's home
///    shard (the cheapest reachable edge, pod::Topology::home_of).
///  - Cross-host steal as last resort: only when the home shard is
///    exhausted does allocation probe the host's remaining reachable
///    shards, cheapest edge first (placement_order).
///  - Sparse topologies reject deterministically: a shard on a device the
///    host cannot reach is never probed, so exhausting the reachable
///    shards returns 0 (like any other exhaustion) instead of silently
///    misrouting the allocation; the session layer additionally refuses
///    to touch unreachable windows at all.
///
/// Frees route by the offset's window bits: freeing another host's memory
/// is just a remote free into that shard (the slab heaps already handle
/// remote frees), charged the edge cost like every other access.
///
/// Graceful degradation (runtime edge health, see pod/faults.h): the
/// probe order is filtered through per-host Down/Suspect device masks
/// recomputed from the topology's runtime health table by
/// refresh_placement(). Allocation probes healthy edges first and falls
/// back to Suspect edges only when every healthy shard is exhausted;
/// Down edges are never probed. Frees destined for a Down device are
/// parked (the block stays allocated — a parked free is deferred, never
/// lost) and replayed by replay_parked() once the edge recovers, so
/// exact block accounting holds across an outage: counter == popcount on
/// every shard once the parked frees have drained. Counted as
/// pod.alloc_degraded / pod.parked_frees / pod.replayed_frees.
///
/// Tiered placement (topologies with per-host LocalDram windows, see
/// pod::Topology::with_local_dram): the host's private DRAM window holds a
/// smaller shard of its own geometry (@p dram_config), and a per-thread
/// ticketed stride scheduler steers Config::dram_percent% of eligible
/// allocations (size <= Config::dram_max_block) there first — falling back
/// to the normal CXL probe order when the DRAM shard is exhausted, so the
/// DRAM capacity limit degrades placement, never correctness. Counted as
/// alloc.tier_dram / alloc.tier_cxl. DRAM-placed blocks are host-private:
/// only their own host can reach the window, so sharing applications must
/// keep DRAM-resident objects host-local (the migrator's demote path moves
/// them back to CXL before they are shared).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cxlalloc/allocator.h"
#include "cxlalloc/stride.h"
#include "pod/topology.h"

namespace cxlalloc {

/// Topology-aware sharded heap: one cxlalloc heap per pod device window.
class PodShardedAllocator : public pod::FaultResolver {
  public:
    /// Device configuration for a pod whose every window holds one shard
    /// heap of @p shard_config plus @p extra_window_bytes of application
    /// space (index arrays etc., see extra_base()). The window size is the
    /// smallest power of two that fits; the per-window sync region covers
    /// the shard's HWcc metadata.
    /// @p dram_config, when given, sizes the windows to also fit the
    /// (usually smaller) per-host DRAM shard geometry — windows are
    /// uniform, so the window and sync sizes are the max over both probe
    /// layouts. Required iff the topology has LocalDram devices.
    static cxl::DeviceConfig device_config(
        const Config& shard_config, const pod::Topology& topology,
        cxl::CoherenceMode mode, bool simulate_cache = false,
        std::uint64_t extra_window_bytes = 0,
        const Config* dram_config = nullptr);

    /// Binds one shard per device window of @p pod (whose topology must be
    /// non-trivial and match the device's window count). @p shard_config
    /// is the per-shard geometry; Config::base is derived per shard.
    /// LocalDram windows get a shard of @p dram_config's geometry instead
    /// (must be non-null iff the topology has a DRAM tier); shard_config's
    /// dram_percent / dram_max_block drive the tiered placement policy.
    PodShardedAllocator(pod::Pod& pod, const Config& shard_config,
                        const Config* dram_config = nullptr);

    /// Attaches every shard to @p process and installs this router as the
    /// process's fault resolver.
    void attach(pod::Process& process);

    /// Per-thread setup on the home shard; other shards attach lazily on
    /// first touch so a thread that never steals never pays a foreign edge.
    void attach_thread(pod::ThreadContext& ctx);

    /// Topology-aware allocation (see file comment). Returns 0 when every
    /// shard reachable from the calling thread's host is exhausted.
    cxl::HeapOffset allocate(pod::ThreadContext& ctx, std::uint64_t size);

    /// Frees @p offset into the shard its window bits name.
    void deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset);

    /// Batched free: offsets are partitioned by window and each shard
    /// drains its part in one batch (NMP doorbell packing intact).
    void deallocate_batch(pod::ThreadContext& ctx,
                          const cxl::HeapOffset* offsets, std::uint32_t n);

    std::byte*
    pointer(pod::ThreadContext& ctx, cxl::HeapOffset offset,
            std::uint64_t len)
    {
        return ctx.mem().data_ptr(offset, len);
    }

    /// Recovers the adopted slot across every shard. The (at most one)
    /// shard whose recovery record is an interrupted NMP batch recovers
    /// first: its redo state lives in the thread's operand ring, which
    /// every other shard's recovery resets.
    void recover(pod::ThreadContext& ctx);

    /// Huge-heap reclamation pass on every shard.
    void cleanup(pod::ThreadContext& ctx);

    /// Recomputes every host's Down/Suspect device masks from the
    /// topology's runtime edge health (pod::Topology::edge_state). Call
    /// after a fault or a recovery transition; safe to call concurrently
    /// with allocating/freeing threads (the masks are atomics — a racing
    /// thread sees either the old or the new degradation, both of which
    /// were true instants ago).
    void refresh_placement();

    /// Frees currently parked because their device's edge was Down when
    /// they were issued (blocks still allocated, replay pending).
    std::uint64_t parked_frees() const;

    /// Replays every parked free whose device @p ctx's host currently
    /// reaches (per its refresh_placement masks); frees whose device is
    /// still Down stay parked. Returns the number replayed. Call after
    /// refresh_placement() once a Down edge comes back.
    std::uint32_t replay_parked(pod::ThreadContext& ctx);

    /// Test hooks: the degradation masks of @p host (bit d = shard d).
    std::uint32_t down_mask(pod::HostId host) const;
    std::uint32_t suspect_mask(pod::HostId host) const;

    /// Quiescent invariant sweep over every shard.
    void check_invariants(cxl::MemSession& mem);

    /// Wires "alloc.*" instrumentation of every shard plus the pod-level
    /// placement counters (pod.alloc_home / pod.alloc_steal /
    /// pod.alloc_exhausted) into @p registry.
    void set_metrics(obs::MetricsRegistry* registry);

    /// pod::FaultResolver: dispatch to the shard owning the offset.
    bool resolve_fault(pod::Process& process, cxl::MemSession& mem,
                       cxl::HeapOffset offset,
                       pod::MappedRange* out) override;

    std::uint32_t shard_count() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    CxlAllocator& shard(cxl::DeviceId device) { return *shards_[device]; }

    /// Host @p host's private DRAM shard device, or shard_count() when the
    /// topology gives it none.
    cxl::DeviceId
    dram_device(pod::HostId host) const
    {
        return dram_of_[host];
    }

    /// True when @p host's allocations are tier-split (it has a DRAM
    /// window and the policy percentage is nonzero).
    bool
    tiered(pod::HostId host) const
    {
        return dram_of_[host] < shards_.size() && dram_percent_ > 0;
    }

    /// First offset of window @p device's extra application region (the
    /// extra_window_bytes requested from device_config), page-aligned
    /// after the shard layout.
    cxl::HeapOffset extra_base(cxl::DeviceId device) const;

    /// Total HWcc bytes across shards (each window contributes a sync
    /// prefix).
    std::uint64_t hwcc_bytes() const;

    pod::Pod& pod() { return pod_; }

  private:
    /// The shards @p ctx's host is wired to, home first (its probe order).
    const std::vector<cxl::DeviceId>& reach_of(pod::ThreadContext& ctx) const;

    /// Everything recovery/cleanup must sweep for @p ctx's host: the CXL
    /// probe order plus the host's DRAM shard (which placement_order
    /// excludes by design, but which holds recovery records and slabs of
    /// its own).
    const std::vector<cxl::DeviceId>& sweep_of(pod::ThreadContext& ctx) const;

    pod::Pod& pod_;
    std::vector<std::unique_ptr<CxlAllocator>> shards_;
    /// Per-host probe order: home first, then reachable shards by edge
    /// cost (precomputed from the topology).
    std::vector<std::vector<cxl::DeviceId>> order_;
    /// Per-host recovery sweep order: order_ plus the DRAM shard, if any.
    std::vector<std::vector<cxl::DeviceId>> sweep_;
    /// Per-host DRAM shard (shards_.size() = none).
    std::vector<cxl::DeviceId> dram_of_;
    /// Tiering policy from shard_config (see Config).
    std::uint32_t dram_percent_ = 0;
    std::uint64_t dram_max_block_ = 0;
    /// Per-thread stride scheduler (single-writer: the owning thread).
    std::array<StrideScheduler, cxl::kMaxThreads + 1> stride_{};

    /// Degraded-placement masks, one per host (bit d = shard d). Written
    /// only by refresh_placement, read lock-free on the allocation path.
    struct HealthMask {
        std::atomic<std::uint32_t> down{0};
        std::atomic<std::uint32_t> suspect{0};
    };
    std::vector<HealthMask> health_;

    void park_free(pod::ThreadContext& ctx, cxl::HeapOffset offset);

    /// Frees deferred while their device was Down (see file comment).
    mutable std::mutex park_mu_;
    std::vector<cxl::HeapOffset> parked_;

    struct Instruments {
        obs::MetricsRegistry* registry = nullptr;
        obs::MetricId alloc_home = obs::kInvalidMetric;
        obs::MetricId alloc_steal = obs::kInvalidMetric;
        obs::MetricId alloc_exhausted = obs::kInvalidMetric;
        obs::MetricId tier_dram = obs::kInvalidMetric;
        obs::MetricId tier_cxl = obs::kInvalidMetric;
        obs::MetricId alloc_degraded = obs::kInvalidMetric;
        obs::MetricId parked = obs::kInvalidMetric;
        obs::MetricId replayed = obs::kInvalidMetric;
    };
    Instruments inst_;
};

} // namespace cxlalloc
