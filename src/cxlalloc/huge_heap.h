/// @file
/// The huge heap (paper §3.1.2, §3.3.2): allocations >= 512 KiB, each
/// backed by its own memory mapping.
///
/// Reproduced design:
///  - a HWcc *reservation array* hands out coarse virtual-address regions;
///    an entry grants one thread exclusive permission to install mappings
///    in that region (PC-S for huge allocations);
///  - each thread tracks its free address space in a volatile interval set
///    reconstructible from shared state (paper §3.4.2);
///  - every allocation gets a HugeDesc (offset, size, free bit) linked into
///    the owner's intrusive descriptor list — the structure the SIGSEGV
///    handler walks to provide PC-T;
///  - *hazard offsets* protect mappings from reclamation while any process
///    still has them installed; reclamation is asynchronous (cleanup());
///  - huge SWcc metadata follows the simple rule: flush after every write,
///    flush before every read (paper §3.2.2, last paragraph).

#pragma once

#include <cstdint>

#include "cxl/mem_ops.h"
#include "cxlalloc/layout.h"
#include "cxlalloc/recovery.h"
#include "cxlalloc/thread_state.h"
#include "pod/fault_handler.h"
#include "pod/thread_context.h"
#include "sync/detectable_cas.h"
#include "sync/hazard_offsets.h"

namespace cxlalloc {

class HugeHeap {
  public:
    HugeHeap(const Layout* layout, cxlsync::DetectableCas* dcas,
             RecoveryLog* log);

    /// Allocates @p size bytes (page-rounded) backed by a fresh mapping;
    /// returns the data offset or 0 if address space is exhausted.
    cxl::HeapOffset allocate(pod::ThreadContext& ctx, ThreadState& ts,
                             std::uint64_t size);

    /// Frees the huge allocation starting at @p offset (any thread, any
    /// process).
    void deallocate(pod::ThreadContext& ctx, ThreadState& ts,
                    cxl::HeapOffset offset);

    /// Asynchronous reclamation pass (paper: "each thread occasionally
    /// walks its hazard offset list and huge descriptor list"):
    ///  - unmaps + un-hazards this process's mappings of freed allocations;
    ///  - recycles this thread's freed, unhazarded descriptors and their
    ///    address space.
    void cleanup(pod::ThreadContext& ctx, ThreadState& ts);

    bool contains(cxl::HeapOffset offset) const;

    /// PC-T fault support: walks descriptor lists for a live allocation
    /// covering @p offset; publishes a hazard for the faulting thread and
    /// fills @p out on success.
    bool resolve(cxl::MemSession& mem, cxl::HeapOffset offset,
                 pod::MappedRange* out);

    /// Rebuilds @p ts's volatile state (free interval set, free descriptor
    /// pool) from the reservation array and descriptor list. Called on
    /// attach and on recovery.
    void rebuild_thread_state(pod::ThreadContext& ctx, ThreadState& ts);

    /// Idempotently redoes an interrupted huge-heap operation.
    void recover(pod::ThreadContext& ctx, ThreadState& ts,
                 const OpRecord& record);

    /// Invariants: descriptor lists acyclic, allocated descs within owned
    /// regions, free bits consistent.
    void check_invariants(cxl::MemSession& mem);

    struct Stats {
        std::uint32_t regions_claimed = 0;
        std::uint32_t live_allocations = 0;
        std::uint64_t live_bytes = 0;
    };

    Stats stats(cxl::MemSession& mem);

    /// Hazard-offset table (exposed for tests).
    cxlsync::HazardOffsets& hazards() { return hazards_; }

  private:
    // Descriptor field access (flush-after-write / flush-before-read).
    cxl::HeapOffset desc(std::uint32_t index) const;
    std::uint32_t desc_next(cxl::MemSession& mem, std::uint32_t index);
    std::uint32_t desc_flags(cxl::MemSession& mem, std::uint32_t index);
    std::uint64_t desc_offset(cxl::MemSession& mem, std::uint32_t index);
    std::uint64_t desc_size(cxl::MemSession& mem, std::uint32_t index);
    void refetch_desc(cxl::MemSession& mem, std::uint32_t index);
    void publish_desc(cxl::MemSession& mem, std::uint32_t index);

    /// Claims an unowned reservation region for the calling thread.
    bool claim_region(pod::ThreadContext& ctx, ThreadState& ts,
                      std::uint32_t* region_out);

    /// Owner of @p region per the reservation array (kNoThread if free).
    cxl::ThreadId region_owner(cxl::MemSession& mem, std::uint32_t region);

    /// Walks @p owner_tid's descriptor list for a descriptor covering
    /// @p offset; returns its index or kNoDesc.
    std::uint32_t find_desc(cxl::MemSession& mem, cxl::ThreadId owner_tid,
                            cxl::HeapOffset offset, bool require_live);

    /// Unlinks descriptor @p index from the calling thread's list.
    void unlink_desc(cxl::MemSession& mem, std::uint32_t index);

    bool on_desc_list(cxl::MemSession& mem, cxl::ThreadId tid,
                      std::uint32_t index);
    void link_desc(cxl::MemSession& mem, std::uint32_t index);

    static constexpr std::uint32_t kNoDesc = ~std::uint32_t{0};

    const Layout* layout_;
    cxlsync::DetectableCas* dcas_;
    RecoveryLog* log_;
    cxlsync::HazardOffsets hazards_;

    std::uint32_t num_regions_;
    std::uint64_t region_size_;
    cxl::HeapOffset data_base_;
    std::uint32_t descs_per_thread_;
};

} // namespace cxlalloc
