#include "cxlalloc/migrate.h"

#include <algorithm>

#include "common/assert.h"
#include "pod/crashpoint.h"
#include "sync/detectable_cas.h"

namespace cxlalloc {

namespace {

bool
is_free_op(Op op)
{
    return op == Op::FreeLocal || op == Op::FreeRemote ||
           op == Op::FreeRemoteBatch || op == Op::HugeFree;
}

} // namespace

void
register_migrate_crash_points()
{
    namespace mp = migratepoint;
    auto& reg = pod::CrashPointRegistry::instance();
    reg.add(mp::kAfterArm, "migrate.after_arm",
            "HotSlabMigrator::migrate_one (record armed)");
    reg.add(mp::kAfterAlloc, "migrate.after_alloc",
            "HotSlabMigrator::migrate_one (target alloced)");
    reg.add(mp::kAfterCopy, "migrate.after_copy",
            "HotSlabMigrator::migrate_one (payload copied)");
    reg.add(mp::kAfterVersion, "migrate.after_version",
            "HotSlabMigrator::migrate_one (publish version durable)");
    reg.add(mp::kAfterPublish, "migrate.after_publish",
            "HotSlabMigrator::migrate_one (cell CAS issued)");
    reg.add(mp::kMidFree, "migrate.mid_free",
            "HotSlabMigrator::free_loser (free staged)");
}

HotSlabMigrator::HotSlabMigrator(PodShardedAllocator& heap)
    : HotSlabMigrator(heap, Options())
{
}

HotSlabMigrator::HotSlabMigrator(PodShardedAllocator& heap,
                                 const Options& options)
    : heap_(heap), options_(options)
{
    register_migrate_crash_points();
    // The copy staging buffer (and the record's 32-bit size field) bound
    // moves to small blocks.
    options_.max_block = std::min<std::uint64_t>(options_.max_block, kSmallMax);
    active_ = heap.pod().topology().has_dram_tier();
    window_bits_ = heap.pod().device().window_bits();
    heat_.resize(heap.shard_count());
    for (cxl::DeviceId d = 0; d < heap.shard_count(); d++) {
        heat_[d].slabs = heap.shard(d).config().small_slabs;
        heat_[d].counts =
            std::make_unique<std::atomic<std::uint32_t>[]>(heat_[d].slabs);
    }
}

void
HotSlabMigrator::set_cell_table(cxl::HeapOffset base, std::uint32_t count)
{
    cells_ = base;
    cell_count_ = count;
}

void
HotSlabMigrator::set_metrics(obs::MetricsRegistry* registry)
{
    inst_ = Instruments{};
    inst_.registry = registry;
    if (registry == nullptr) {
        return;
    }
    inst_.promotions = registry->counter("migrate.promotions");
    inst_.demotions = registry->counter("migrate.demotions");
    inst_.aborted = registry->counter("migrate.aborted");
    inst_.epochs = registry->counter("migrate.epochs");
    inst_.recoveries = registry->counter("migrate.recoveries");
    inst_.evacuations = registry->counter("migrate.evacuations");
    inst_.rehomed = registry->counter("migrate.rehomed");
}

void
HotSlabMigrator::bump(obs::MetricsRegistry* reg, cxl::ThreadId tid,
                      obs::MetricId id, std::uint64_t n)
{
    if (reg != nullptr) {
        reg->shard(tid).add(id, n);
    }
}

void
HotSlabMigrator::write_stage(cxl::MemSession& mem, cxl::HeapOffset row,
                             std::uint64_t word)
{
    mem.store<std::uint64_t>(row + RowField::kStage, word);
    mem.flush(row, cxlcommon::kCacheLine);
    mem.fence();
}

void
HotSlabMigrator::clear_row(cxl::MemSession& mem, cxl::HeapOffset row)
{
    mem.store<std::uint64_t>(row + RowField::kStage, 0);
    mem.store<std::uint64_t>(row + RowField::kCell, 0);
    mem.store<std::uint64_t>(row + RowField::kOld, 0);
    mem.store<std::uint64_t>(row + RowField::kNew, 0);
    mem.store<std::uint64_t>(row + RowField::kVersion, 0);
    mem.flush(row, cxlcommon::kCacheLine);
    mem.fence();
}

void
HotSlabMigrator::free_loser(pod::ThreadContext& ctx, cxl::HeapOffset row,
                            cxl::DeviceId target, std::uint32_t size,
                            bool free_new, cxl::HeapOffset old_off,
                            cxl::HeapOffset new_off)
{
    cxl::MemSession& mem = ctx.mem();
    cxl::HeapOffset block = free_new ? new_off : old_off;
    cxl::DeviceId fdev = free_new ? target : pod_device_of_(old_off);
    CxlAllocator& freeing = heap_.shard(fdev);

    // Quiesce BEFORE the durable Free stage: Free-stage recovery re-frees
    // the loser unless the freeing shard's record is a free-type op, so a
    // stale free record from an earlier operation must be gone by the time
    // the stage can be observed. (A crash between the quiesce and the
    // stage write re-enters the PREVIOUS stage, which re-derives free_new
    // idempotently and quiesces again.)
    freeing.quiesce_record(ctx);
    write_stage(mem, row, pack_stage(Stage::Free, target, free_new, size));
    ctx.maybe_crash(migratepoint::kMidFree);
    freeing.deallocate(ctx, block);
    clear_row(mem, row);
}

bool
HotSlabMigrator::migrate_one(pod::ThreadContext& ctx, cxl::HeapOffset cell,
                             cxl::HeapOffset old_off, cxl::DeviceId target,
                             std::uint64_t size)
{
    namespace mp = migratepoint;
    cxl::MemSession& mem = ctx.mem();
    CxlAllocator& cw = heap_.shard(pod_device_of_(cell));
    CxlAllocator& tgt = heap_.shard(target);
    cxl::HeapOffset row = cw.layout().recovery_row(ctx.tid());
    CXL_ASSERT((old_off >> 3) <= 0xffffffffULL && (old_off & 7) == 0,
               "cell values are offset >> 3 in 32 bits");
    CXL_ASSERT(size <= options_.max_block, "migration block too large");

    // Arm: durable (cell, old, target, size) before the target alloc, so
    // Armed recovery can attribute an Op::Alloc record on the quiesced
    // target shard to this migration and reclaim the leaked block.
    tgt.quiesce_record(ctx);
    mem.store<std::uint64_t>(row + RowField::kCell, cell);
    mem.store<std::uint64_t>(row + RowField::kOld, old_off);
    mem.store<std::uint64_t>(row + RowField::kNew, 0);
    mem.store<std::uint64_t>(row + RowField::kVersion, 0);
    write_stage(mem, row,
                pack_stage(Stage::Armed, target, false,
                           static_cast<std::uint32_t>(size)));
    ctx.maybe_crash(mp::kAfterArm);

    cxl::HeapOffset new_off = tgt.allocate(ctx, size);
    if (new_off == 0) {
        clear_row(mem, row);
        aborted_++;
        bump(inst_.registry, ctx.tid(), inst_.aborted);
        return false;
    }
    ctx.maybe_crash(mp::kAfterAlloc);

    mem.store<std::uint64_t>(row + RowField::kNew, new_off);
    write_stage(mem, row,
                pack_stage(Stage::Copied, target, false,
                           static_cast<std::uint32_t>(size)));

    // Copy and flush the payload before anything can publish it.
    std::uint8_t buf[kSmallMax];
    mem.read_bytes(old_off, buf, size);
    mem.write_bytes(new_off, buf, size);
    mem.flush(new_off, size);
    mem.fence();
    ctx.maybe_crash(mp::kAfterCopy);

    // Publish: consume a cell-shard CAS version (durably logged as
    // Op::CellPublish by log_cell_publish), persist it into the record,
    // then one detectable-CAS attempt. A racing app update makes the CAS
    // fail, which aborts the migration (the new block is the loser).
    std::uint16_t version = cw.log_cell_publish(ctx);
    mem.store<std::uint64_t>(row + RowField::kVersion, version);
    write_stage(mem, row,
                pack_stage(Stage::Publish, target, false,
                           static_cast<std::uint32_t>(size)));
    ctx.maybe_crash(mp::kAfterVersion);

    cxlsync::DetectableCas::Result res =
        cw.dcas().try_cas(mem, cell,
                          static_cast<std::uint32_t>(old_off >> 3),
                          static_cast<std::uint32_t>(new_off >> 3), version);
    ctx.maybe_crash(mp::kAfterPublish);

    free_loser(ctx, row, target, static_cast<std::uint32_t>(size),
               /*free_new=*/!res.success, old_off, new_off);
    if (!res.success) {
        aborted_++;
        bump(inst_.registry, ctx.tid(), inst_.aborted);
    }
    return res.success;
}

bool
HotSlabMigrator::debug_migrate_cell(pod::ThreadContext& ctx,
                                    cxl::HeapOffset cell,
                                    cxl::DeviceId target)
{
    CxlAllocator& cw = heap_.shard(pod_device_of_(cell));
    std::uint32_t val = cw.dcas().read(ctx.mem(), cell);
    if (val == 0) {
        return false;
    }
    auto off = static_cast<cxl::HeapOffset>(val) << 3;
    cxl::DeviceId dev = pod_device_of_(off);
    if (dev == target) {
        return false;
    }
    const Layout& l = heap_.shard(dev).layout();
    CXL_ASSERT(l.in_small_data(off), "debug migration of a non-small block");
    auto slab = static_cast<std::uint32_t>((off - l.small_data()) /
                                           kSmallSlabSize);
    std::uint8_t biased =
        heap_.shard(dev).small_heap().debug_class_biased(ctx.mem(), slab);
    CXL_ASSERT(biased != 0, "cell names a block in a classless slab");
    std::uint64_t size = small_class_size(biased - 1);
    return migrate_one(ctx, cell, off, target, size);
}

std::uint32_t
HotSlabMigrator::evacuate_device(pod::ThreadContext& ctx,
                                cxl::DeviceId source, cxl::DeviceId target)
{
    CXL_ASSERT(source < heap_.shard_count() && target < heap_.shard_count(),
               "evacuation names no shard");
    CXL_ASSERT(source != target, "evacuation must change device");
    if (cell_count_ == 0) {
        return 0;
    }
    cxl::MemSession& mem = ctx.mem();
    const Layout& l = heap_.shard(source).layout();
    std::uint32_t moved = 0;
    for (std::uint32_t i = 0; i < cell_count_; i++) {
        cxl::HeapOffset cell = cells_ + static_cast<cxl::HeapOffset>(i) * 8;
        std::uint32_t val = cxlsync::DcasWord::value(mem.atomic_load64(cell));
        if (val == 0) {
            continue;
        }
        auto off = static_cast<cxl::HeapOffset>(val) << 3;
        if (pod_device_of_(off) != source) {
            continue;
        }
        // Evacuation covers what migrate_one can move: small blocks with
        // a live size class. Anything else stays for edge recovery.
        if (!l.in_small_data(off)) {
            continue;
        }
        auto slab = static_cast<std::uint32_t>((off - l.small_data()) /
                                               kSmallSlabSize);
        std::uint8_t biased =
            heap_.shard(source).small_heap().debug_class_biased(mem, slab);
        if (biased == 0) {
            continue;
        }
        std::uint64_t size = small_class_size(biased - 1);
        if (size > options_.max_block) {
            continue;
        }
        if (migrate_one(ctx, cell, off, target, size)) {
            moved++;
            evacuations_++;
            bump(inst_.registry, ctx.tid(), inst_.evacuations);
        }
    }
    return moved;
}

std::uint32_t
HotSlabMigrator::rehome(pod::ThreadContext& ctx, cxl::DeviceId target)
{
    CXL_ASSERT(target < heap_.shard_count(), "rehome names no shard");
    if (cell_count_ == 0) {
        return 0;
    }
    cxl::MemSession& mem = ctx.mem();
    std::uint32_t moved = 0;
    for (std::uint32_t i = 0; i < cell_count_; i++) {
        cxl::HeapOffset cell = cells_ + static_cast<cxl::HeapOffset>(i) * 8;
        std::uint32_t val = cxlsync::DcasWord::value(mem.atomic_load64(cell));
        if (val == 0) {
            continue;
        }
        auto off = static_cast<cxl::HeapOffset>(val) << 3;
        cxl::DeviceId dev = pod_device_of_(off);
        const Layout& l = heap_.shard(dev).layout();
        if (!l.in_small_data(off)) {
            continue;
        }
        auto slab = static_cast<std::uint32_t>((off - l.small_data()) /
                                               kSmallSlabSize);
        SlabHeap& sh = heap_.shard(dev).small_heap();
        std::uint8_t biased = sh.debug_class_biased(mem, slab);
        if (biased == 0) {
            continue;
        }
        // Skip blocks whose frees already stay host-local AND will keep
        // doing so: the slab must be caller-owned on the target device
        // with a full remote-free counter. A slab that has absorbed any
        // remote free is a time bomb — the moment it fills it disowns
        // itself (full_transition) and every later free pays the mCAS —
        // so its blocks are pulled out even while the owner field still
        // reads as ours.
        if (dev == target && sh.debug_owner(mem, slab) == ctx.tid() &&
            sh.debug_remote_free(mem, slab) ==
                small_blocks_per_slab(biased - 1)) {
            continue;
        }
        std::uint64_t size = small_class_size(biased - 1);
        if (size > options_.max_block) {
            continue;
        }
        if (migrate_one(ctx, cell, off, target, size)) {
            moved++;
            rehomed_++;
            bump(inst_.registry, ctx.tid(), inst_.rehomed);
        }
    }
    return moved;
}

std::uint32_t
HotSlabMigrator::run_epoch(pod::ThreadContext& ctx)
{
    if (!active_ || cell_count_ == 0) {
        return 0;
    }
    cxl::MemSession& mem = ctx.mem();
    auto host = static_cast<pod::HostId>(ctx.process().host());
    cxl::DeviceId dram = heap_.dram_device(host);
    if (dram >= heap_.shard_count()) {
        return 0;
    }
    cxl::DeviceId home = heap_.pod().topology().home_of(host);

    struct Move {
        cxl::HeapOffset cell = 0;
        cxl::HeapOffset off = 0;
        cxl::DeviceId target = 0;
        std::uint64_t size = 0;
        bool promote = false;
    };
    std::vector<Move> demotes;
    std::vector<Move> promotes;

    for (std::uint32_t i = 0; i < cell_count_; i++) {
        cxl::HeapOffset cell = cells_ + static_cast<cxl::HeapOffset>(i) * 8;
        std::uint32_t val = cxlsync::DcasWord::value(mem.atomic_load64(cell));
        if (val == 0) {
            continue;
        }
        auto off = static_cast<cxl::HeapOffset>(val) << 3;
        cxl::DeviceId dev = pod_device_of_(off);
        if (dev >= heap_.shard_count()) {
            continue;
        }
        const Layout& l = heap_.shard(dev).layout();
        if (!l.in_small_data(off)) {
            continue;
        }
        auto slab = static_cast<std::uint32_t>((off - l.small_data()) /
                                               kSmallSlabSize);
        std::uint32_t heat =
            heat_[dev].counts[slab].load(std::memory_order_relaxed);
        bool demote = dev == dram && heat <= options_.demote_max_heat;
        bool promote =
            dev != dram && heat >= options_.promote_min_heat;
        if (!demote && !promote) {
            continue;
        }
        std::uint8_t biased =
            heap_.shard(dev).small_heap().debug_class_biased(mem, slab);
        if (biased == 0) {
            continue;
        }
        std::uint64_t size = small_class_size(biased - 1);
        if (size > options_.max_block) {
            continue;
        }
        Move m{cell, off, demote ? home : dram, size, promote};
        (demote ? demotes : promotes).push_back(m);
    }

    // Demotions first: they open DRAM capacity the promotions need.
    std::uint32_t moved = 0;
    for (const std::vector<Move>* list : {&demotes, &promotes}) {
        for (const Move& m : *list) {
            if (moved >= options_.max_moves_per_epoch) {
                break;
            }
            if (!migrate_one(ctx, m.cell, m.off, m.target, m.size)) {
                continue;
            }
            moved++;
            if (m.promote) {
                promotions_++;
                bump(inst_.registry, ctx.tid(), inst_.promotions);
            } else {
                demotions_++;
                bump(inst_.registry, ctx.tid(), inst_.demotions);
            }
        }
    }

    for (auto& dh : heat_) {
        for (std::uint32_t s = 0; s < dh.slabs; s++) {
            std::uint32_t h = dh.counts[s].load(std::memory_order_relaxed);
            if (h != 0) {
                dh.counts[s].store(h >> 1, std::memory_order_relaxed);
            }
        }
    }
    bump(inst_.registry, ctx.tid(), inst_.epochs);
    return moved;
}

void
HotSlabMigrator::recover(pod::ThreadContext& ctx)
{
    // No active_ gate: evacuate_device writes migration records on pods
    // without a DRAM tier, so the record sweep must always run. On an
    // untouched pod every row's stage is Idle and this degrades to plain
    // shard recovery.
    cxl::MemSession& mem = ctx.mem();
    const pod::Topology& topo = heap_.pod().topology();
    auto host = static_cast<pod::HostId>(ctx.process().host());

    // Everything the adopter's host can reach: the CXL placement order
    // plus its private DRAM window (excluded from placement by design).
    std::vector<cxl::DeviceId> sweep = topo.placement_order(host);
    cxl::DeviceId dram = topo.dram_device_of(host);
    if (dram < topo.devices()) {
        sweep.push_back(dram);
    }

    // Snapshot every shard's allocator record BEFORE shard recovery redoes
    // and clears them — Armed/Free dispatch below needs the pre-recovery
    // records to attribute blocks.
    std::vector<OpRecord> snap(heap_.shard_count());
    for (cxl::DeviceId d : sweep) {
        snap[d] = heap_.shard(d).pending_record(ctx);
    }

    // Locate the (at most one) in-flight migration record. The row lives
    // in the CELL shard's recovery row; refetch the line from the device
    // like RecoveryLog::read does.
    cxl::DeviceId found = heap_.shard_count();
    for (cxl::DeviceId d : sweep) {
        cxl::HeapOffset row = heap_.shard(d).layout().recovery_row(ctx.tid());
        mem.flush(row, cxlcommon::kCacheLine);
        if ((mem.load<std::uint64_t>(row + RowField::kStage) & 0xff) != 0) {
            CXL_ASSERT(found == heap_.shard_count(),
                       "two in-flight migration records for one thread");
            found = d;
        }
    }

    heap_.recover(ctx);

    if (found == heap_.shard_count()) {
        return;
    }
    bump(inst_.registry, ctx.tid(), inst_.recoveries);

    CxlAllocator& cw = heap_.shard(found);
    cxl::HeapOffset row = cw.layout().recovery_row(ctx.tid());
    std::uint64_t word = mem.load<std::uint64_t>(row + RowField::kStage);
    auto stage = static_cast<Stage>(word & 0xff);
    auto target = static_cast<cxl::DeviceId>((word >> 8) & 0xff);
    bool free_new = ((word >> 16) & 0xff) != 0;
    auto size = static_cast<std::uint32_t>(word >> 32);
    cxl::HeapOffset cell = mem.load<std::uint64_t>(row + RowField::kCell);
    cxl::HeapOffset old_off = mem.load<std::uint64_t>(row + RowField::kOld);
    cxl::HeapOffset new_off = mem.load<std::uint64_t>(row + RowField::kNew);
    auto v_pub = static_cast<std::uint16_t>(
        mem.load<std::uint64_t>(row + RowField::kVersion));

    // From Publish on, the dead thread consumed version v_pub on the cell
    // shard. Shard recovery restored the version from the Op::CellPublish
    // record — unless the cell shard doubled as the freeing shard and
    // free_loser quiesced that record. Re-bump before anything on this
    // shard can consume a version.
    if (stage == Stage::Publish || stage == Stage::Free) {
        ThreadState& ts = cw.thread_state(ctx.tid());
        if (!cxlsync::version_geq(ts.version, v_pub)) {
            ts.version = v_pub;
        }
    }

    switch (stage) {
    case Stage::Armed: {
        // The durable record predates the target alloc. If the target
        // shard's (quiesced-at-arm) record is an Op::Alloc, that alloc was
        // handed to the dead migration and leaked; anything else means the
        // alloc never started.
        if (snap[target].op != Op::Alloc) {
            clear_row(mem, row);
            break;
        }
        cxl::HeapOffset leaked =
            heap_.shard(target).record_block_offset(mem, snap[target]);
        // Persist the reconstruction before freeing: a re-crash inside
        // free_loser must not re-enter Armed (the quiesces below would
        // erase the Op::Alloc evidence) — Copied-stage recovery re-frees
        // the recorded block without consulting the snapshot.
        mem.store<std::uint64_t>(row + RowField::kNew, leaked);
        write_stage(mem, row,
                    pack_stage(Stage::Copied, target, false, size));
        free_loser(ctx, row, target, size, /*free_new=*/true, old_off, leaked);
        break;
    }
    case Stage::Copied:
        // Target block allocated and recorded, never published: free it.
        free_loser(ctx, row, target, size, /*free_new=*/true, old_off, new_off);
        break;
    case Stage::Publish: {
        // The CAS may or may not have executed; v_pub is durable, so the
        // detectable-CAS machinery answers exactly.
        bool ok = cw.dcas().did_succeed(mem, cell, v_pub);
        free_loser(ctx, row, target, size, /*free_new=*/!ok, old_off, new_off);
        break;
    }
    case Stage::Free: {
        // The loser's free was durably staged; the freeing shard's record
        // tells whether it also executed (then shard recovery already
        // redid it — re-freeing would double-free).
        cxl::HeapOffset block = free_new ? new_off : old_off;
        cxl::DeviceId fdev = free_new ? target : pod_device_of_(old_off);
        if (!is_free_op(snap[fdev].op)) {
            heap_.shard(fdev).deallocate(ctx, block);
        }
        clear_row(mem, row);
        break;
    }
    case Stage::Idle:
        break;
    }
}

} // namespace cxlalloc
