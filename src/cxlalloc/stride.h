/// @file
/// Ticketed stride scheduler for tiered placement (after Sidle's
/// cxl_allocator stride_scheduler): splits a stream of allocations
/// between the local-DRAM and CXL tiers at a configured percentage.
///
/// Each tier holds a ticket that advances by its stride when picked; the
/// tier with the smaller ticket goes next, so over any window the pick
/// ratio converges to stride_cxl : stride_dram (strides are the
/// gcd-reduced complement percentages — a tier's stride is the OTHER
/// tier's share, so the cheaper-stride tier is picked more often).
///
/// Sidle guards ticket overflow by zeroing both tickets, but only in the
/// branch that is about to overflow — which erases the accumulated phase
/// between the tiers and (depending on which branch trips first) briefly
/// skews the split after 2^64 byte-tickets wrap. This port renormalizes
/// instead: when either ticket crosses the renorm threshold, the common
/// minimum is subtracted from both, preserving the exact relative phase.
/// Strides are at most 100, so post-renorm tickets are bounded and the
/// counters never reach the wrap in the first place (unit-tested by
/// driving the tickets to the threshold, tests/cxlalloc/test_stride.cc).
///
/// Single-threaded by design: one instance per thread (the allocator
/// keeps one per thread slot), so "atomically w.r.t. the owning thread"
/// is free — both tickets are reset in one place by their only writer.

#pragma once

#include <cstdint>

namespace cxlalloc {

/// Picks DRAM for dram_percent% of calls, CXL for the rest.
class StrideScheduler {
  public:
    /// Tickets are renormalized (both reduced by their common minimum)
    /// once either crosses this. Any value far above 100*100 works; small
    /// enough to be driven by a unit test, large enough that renorm is
    /// rare on the fast path.
    static constexpr std::uint64_t kRenormThreshold = 1u << 20;

    StrideScheduler() { configure(0); }

    /// Sets the DRAM share to @p dram_percent (clamped to 100) and resets
    /// both tickets.
    void
    configure(std::uint32_t dram_percent)
    {
        if (dram_percent > 100) {
            dram_percent = 100;
        }
        // A tier's stride is the other tier's percentage (gcd-reduced):
        // smaller stride => picked more often.
        std::uint32_t d = gcd(dram_percent, 100 - dram_percent);
        stride_dram_ = (100 - dram_percent) / d;
        stride_cxl_ = dram_percent / d;
        ticket_dram_ = 0;
        ticket_cxl_ = 0;
    }

    /// True when the next allocation should go to the DRAM tier.
    bool
    next_dram()
    {
        if (stride_cxl_ == 0) {
            return false; // 0% DRAM
        }
        if (stride_dram_ == 0) {
            return true; // 100% DRAM
        }
        bool dram = ticket_dram_ <= ticket_cxl_;
        if (dram) {
            ticket_dram_ += stride_dram_;
        } else {
            ticket_cxl_ += stride_cxl_;
        }
        if (ticket_dram_ >= kRenormThreshold ||
            ticket_cxl_ >= kRenormThreshold) {
            renormalize();
        }
        return dram;
    }

    std::uint64_t ticket_dram() const { return ticket_dram_; }
    std::uint64_t ticket_cxl() const { return ticket_cxl_; }

    /// Test hook: plants ticket values to drive the renorm/wraparound
    /// paths without 2^20 iterations.
    void
    debug_set_tickets(std::uint64_t dram, std::uint64_t cxl)
    {
        ticket_dram_ = dram;
        ticket_cxl_ = cxl;
    }

  private:
    static std::uint32_t
    gcd(std::uint32_t a, std::uint32_t b)
    {
        while (b != 0) {
            std::uint32_t t = b;
            b = a % b;
            a = t;
        }
        return a == 0 ? 1 : a;
    }

    /// Consistent overflow handling (the Sidle fix): subtract the common
    /// minimum from BOTH tickets in the one place that can grow them, so
    /// the relative phase — the only state the scheduler has — survives
    /// unchanged.
    void
    renormalize()
    {
        std::uint64_t m =
            ticket_dram_ < ticket_cxl_ ? ticket_dram_ : ticket_cxl_;
        ticket_dram_ -= m;
        ticket_cxl_ -= m;
    }

    std::uint32_t stride_dram_ = 0;
    std::uint32_t stride_cxl_ = 0;
    std::uint64_t ticket_dram_ = 0;
    std::uint64_t ticket_cxl_ = 0;
};

} // namespace cxlalloc
