#include "cxlalloc/huge_heap.h"

#include "common/assert.h"
#include "common/cacheline.h"
#include "pod/process.h"

namespace cxlalloc {

using cxlcommon::align_up;
using cxlsync::DcasWord;

HugeHeap::HugeHeap(const Layout* layout, cxlsync::DetectableCas* dcas,
                   RecoveryLog* log)
    : layout_(layout), dcas_(dcas), log_(log),
      hazards_(layout->hazard_table(),
               layout->config().hazard_slots_per_thread),
      num_regions_(layout->config().huge_regions),
      region_size_(layout->config().huge_region_size),
      data_base_(layout->huge_data()),
      descs_per_thread_(layout->config().huge_descs_per_thread)
{
}

// ------------------------------------------------------- descriptor access

cxl::HeapOffset
HugeHeap::desc(std::uint32_t index) const
{
    CXL_ASSERT(index < layout_->huge_desc_count(), "desc index out of range");
    return layout_->huge_desc(index);
}

void
HugeHeap::refetch_desc(cxl::MemSession& mem, std::uint32_t index)
{
    // Huge-heap SWcc rule: flush before every read (paper §3.2.2).
    mem.flush(desc(index), HugeDescField::kStride);
}

void
HugeHeap::publish_desc(cxl::MemSession& mem, std::uint32_t index)
{
    // Huge-heap SWcc rule: flush + fence after every write.
    mem.flush(desc(index), HugeDescField::kStride);
    mem.fence();
}

std::uint32_t
HugeHeap::desc_next(cxl::MemSession& mem, std::uint32_t index)
{
    return mem.load<std::uint32_t>(desc(index) + HugeDescField::kNext);
}

std::uint32_t
HugeHeap::desc_flags(cxl::MemSession& mem, std::uint32_t index)
{
    return mem.load<std::uint32_t>(desc(index) + HugeDescField::kFlags);
}

std::uint64_t
HugeHeap::desc_offset(cxl::MemSession& mem, std::uint32_t index)
{
    return mem.load<std::uint64_t>(desc(index) + HugeDescField::kOffset);
}

std::uint64_t
HugeHeap::desc_size(cxl::MemSession& mem, std::uint32_t index)
{
    return mem.load<std::uint64_t>(desc(index) + HugeDescField::kSize);
}

// ------------------------------------------------------------------ regions

cxl::ThreadId
HugeHeap::region_owner(cxl::MemSession& mem, std::uint32_t region)
{
    return static_cast<cxl::ThreadId>(
        DcasWord::value(mem.atomic_load64(layout_->huge_reservation(region))));
}

bool
HugeHeap::claim_region(pod::ThreadContext& ctx, ThreadState& ts,
                       std::uint32_t* region_out)
{
    cxl::MemSession& mem = ctx.mem();
    for (std::uint32_t region = 0; region < num_regions_; region++) {
        cxl::HeapOffset word = layout_->huge_reservation(region);
        if (DcasWord::value(mem.atomic_load64(word)) != 0) {
            continue;
        }
        std::uint16_t ver = ts.next_version();
        log_->log(mem, OpRecord{.op = Op::HugeReserve,
                                .large_heap = false,
                                .aux = 0,
                                .version = ver,
                                .index = region});
        ctx.maybe_crash(crashpoint::kAfterRecord);
        if (dcas_->try_cas(mem, word, 0, mem.tid(), ver).success) {
            *region_out = region;
            return true;
        }
        // Lost the race for this region; keep scanning.
    }
    return false;
}

// --------------------------------------------------------- descriptor lists

bool
HugeHeap::on_desc_list(cxl::MemSession& mem, cxl::ThreadId tid,
                       std::uint32_t index)
{
    cxl::HeapOffset head = layout_->huge_local(tid);
    mem.flush(head, 8);
    std::uint32_t raw = mem.load<std::uint32_t>(head);
    std::uint32_t steps = 0;
    while (raw != 0 && steps++ <= layout_->huge_desc_count()) {
        if (raw - 1 == index) {
            return true;
        }
        refetch_desc(mem, raw - 1);
        raw = desc_next(mem, raw - 1);
    }
    return false;
}

void
HugeHeap::link_desc(cxl::MemSession& mem, std::uint32_t index)
{
    cxl::HeapOffset head = layout_->huge_local(mem.tid());
    std::uint32_t old = mem.load<std::uint32_t>(head);
    mem.store<std::uint32_t>(desc(index) + HugeDescField::kNext, old);
    publish_desc(mem, index);
    mem.store<std::uint32_t>(head, index + 1);
    mem.flush(head, 8);
    mem.fence();
}

void
HugeHeap::unlink_desc(cxl::MemSession& mem, std::uint32_t index)
{
    cxl::HeapOffset head = layout_->huge_local(mem.tid());
    std::uint32_t raw = mem.load<std::uint32_t>(head);
    CXL_ASSERT(raw != 0, "unlink from empty descriptor list");
    if (raw - 1 == index) {
        mem.store<std::uint32_t>(head, desc_next(mem, index));
        mem.flush(head, 8);
        mem.fence();
        return;
    }
    std::uint32_t prev = raw - 1;
    std::uint32_t steps = 0;
    while (true) {
        CXL_ASSERT(steps++ <= layout_->huge_desc_count(),
                   "descriptor list cyclic or entry missing");
        std::uint32_t next = desc_next(mem, prev);
        CXL_ASSERT(next != 0, "descriptor not on list");
        if (next - 1 == index) {
            mem.store<std::uint32_t>(desc(prev) + HugeDescField::kNext,
                                     desc_next(mem, index));
            publish_desc(mem, prev);
            return;
        }
        prev = next - 1;
    }
}

std::uint32_t
HugeHeap::find_desc(cxl::MemSession& mem, cxl::ThreadId owner_tid,
                    cxl::HeapOffset offset, bool require_live)
{
    cxl::HeapOffset head = layout_->huge_local(owner_tid);
    mem.flush(head, 8);
    std::uint32_t raw = mem.load<std::uint32_t>(head);
    std::uint32_t steps = 0;
    while (raw != 0 && steps++ <= layout_->huge_desc_count()) {
        std::uint32_t index = raw - 1;
        refetch_desc(mem, index);
        std::uint32_t flags = desc_flags(mem, index);
        if (flags & HugeDescField::kFlagAllocated) {
            std::uint64_t start = desc_offset(mem, index);
            std::uint64_t size = desc_size(mem, index);
            bool live = !(flags & HugeDescField::kFlagFree);
            if (offset >= start && offset < start + size &&
                (!require_live || live)) {
                return index;
            }
        }
        raw = desc_next(mem, index);
    }
    return kNoDesc;
}

// --------------------------------------------------------------- operations

bool
HugeHeap::contains(cxl::HeapOffset offset) const
{
    return offset >= data_base_ &&
           offset < data_base_ + static_cast<cxl::HeapOffset>(num_regions_) *
                                     region_size_;
}

cxl::HeapOffset
HugeHeap::allocate(pod::ThreadContext& ctx, ThreadState& ts,
                   std::uint64_t size)
{
    cxl::MemSession& mem = ctx.mem();
    size = align_up(size, cxl::kPageSize);
    if (size > region_size_) {
        return 0; // one allocation never spans reservation regions
    }
    std::uint64_t start = 0;
    bool cleaned = false;
    while (!ts.huge_free.take(size, &start)) {
        std::uint32_t region = 0;
        if (claim_region(ctx, ts, &region)) {
            ts.huge_free.insert(layout_->huge_region_data(region),
                                region_size_);
            continue;
        }
        if (!cleaned) {
            // Before reporting exhaustion, run the asynchronous reclaim
            // pass once: freed-but-unreclaimed mappings may be waiting.
            cleanup(ctx, ts);
            cleaned = true;
            continue;
        }
        return 0; // address space exhausted
    }
    if (ts.free_descs.empty()) {
        cleanup(ctx, ts); // try to recycle freed descriptors
        if (ts.free_descs.empty()) {
            ts.huge_free.insert(start, size);
            return 0;
        }
    }
    std::uint32_t index = ts.free_descs.back();
    ts.free_descs.pop_back();

    log_->log(mem, OpRecord{.op = Op::HugeAlloc,
                            .large_heap = false,
                            .aux = 0,
                            .version = ts.version,
                            .index = index});
    ctx.maybe_crash(crashpoint::kAfterRecord);

    cxl::HeapOffset d = desc(index);
    mem.store<std::uint64_t>(d + HugeDescField::kOffset, start);
    mem.store<std::uint64_t>(d + HugeDescField::kSize, size);
    mem.store<std::uint32_t>(d + HugeDescField::kFlags,
                             HugeDescField::kFlagAllocated);
    publish_desc(mem, index);
    ctx.maybe_crash(crashpoint::kMidHugeAlloc);
    link_desc(mem, index);

    // Hazard-offset rule 1: publish before mapping. A full row means this
    // thread holds its configured maximum of concurrent mappings; reclaim
    // freed ones and retry before failing the allocation.
    if (hazards_.try_publish(mem, start) == cxlsync::HazardOffsets::kNoSlot) {
        cleanup(ctx, ts);
        if (hazards_.try_publish(mem, start) ==
            cxlsync::HazardOffsets::kNoSlot) {
            // Roll the allocation back: unlink + free the descriptor and
            // return the address space.
            unlink_desc(mem, index);
            mem.store<std::uint32_t>(desc(index) + HugeDescField::kFlags, 0);
            publish_desc(mem, index);
            ts.free_descs.push_back(index);
            ts.huge_free.insert(start, size);
            return 0;
        }
    }
    ctx.maybe_crash(crashpoint::kMidHugeMap);
    ctx.process().install_mapping(start, size);
    return start;
}

void
HugeHeap::deallocate(pod::ThreadContext& ctx, ThreadState& ts,
                     cxl::HeapOffset offset)
{
    cxl::MemSession& mem = ctx.mem();
    CXL_ASSERT(contains(offset), "huge free of non-huge offset");
    auto region =
        static_cast<std::uint32_t>((offset - data_base_) / region_size_);
    cxl::ThreadId owner_tid = region_owner(mem, region);
    CXL_ASSERT(owner_tid != cxl::kNoThread,
               "huge free into unclaimed region");
    std::uint32_t index = find_desc(mem, owner_tid, offset,
                                    /*require_live=*/true);
    CXL_ASSERT(index != kNoDesc, "huge free of unknown allocation");

    log_->log(mem, OpRecord{.op = Op::HugeFree,
                            .large_heap = false,
                            .aux = 0,
                            .version = ts.version,
                            .index = index});
    ctx.maybe_crash(crashpoint::kAfterRecord);

    std::uint64_t start = desc_offset(mem, index);
    std::uint64_t size = desc_size(mem, index);
    // "Setting the free bit does not require CAS because huge descriptors
    // are never updated concurrently" (§3.1.2).
    mem.store<std::uint32_t>(desc(index) + HugeDescField::kFlags,
                             HugeDescField::kFlagAllocated |
                                 HugeDescField::kFlagFree);
    publish_desc(mem, index);
    ctx.maybe_crash(crashpoint::kMidHugeFree);

    // Hazard-offset rule 2: remove after unmapping.
    ctx.process().remove_mapping(start, size);
    hazards_.remove_value(mem, start);
}

void
HugeHeap::cleanup(pod::ThreadContext& ctx, ThreadState& ts)
{
    cxl::MemSession& mem = ctx.mem();
    // Pass 1: this thread's hazards over allocations that were freed
    // elsewhere — unmap locally and drop the hazard so reclamation can
    // proceed pod-wide.
    for (std::uint32_t slot = 0; slot < hazards_.slots_per_thread(); slot++) {
        cxl::HeapOffset at = hazards_.slot_offset(mem.tid(), slot);
        std::uint64_t value = mem.load<std::uint64_t>(at);
        if (value == 0) {
            continue;
        }
        auto region =
            static_cast<std::uint32_t>((value - data_base_) / region_size_);
        cxl::ThreadId owner_tid = region_owner(mem, region);
        if (owner_tid == cxl::kNoThread) {
            continue;
        }
        std::uint32_t index = find_desc(mem, owner_tid, value,
                                        /*require_live=*/false);
        if (index == kNoDesc) {
            continue;
        }
        std::uint32_t flags = desc_flags(mem, index);
        if (flags & HugeDescField::kFlagFree) {
            ctx.process().remove_mapping(desc_offset(mem, index),
                                         desc_size(mem, index));
            hazards_.remove(mem, slot);
        }
    }
    // Pass 2: this thread's freed, unhazarded descriptors — reclaim the
    // descriptor and its address space.
    cxl::HeapOffset head = layout_->huge_local(mem.tid());
    std::uint32_t raw = mem.load<std::uint32_t>(head);
    std::uint32_t steps = 0;
    while (raw != 0 && steps++ <= layout_->huge_desc_count()) {
        std::uint32_t index = raw - 1;
        refetch_desc(mem, index);
        std::uint32_t flags = desc_flags(mem, index);
        std::uint32_t next = desc_next(mem, index);
        if (flags == 0) {
            // Interrupted reclaim from a previous life: finish the unlink.
            unlink_desc(mem, index);
            ts.free_descs.push_back(index);
        } else if ((flags & HugeDescField::kFlagFree) != 0) {
            std::uint64_t start = desc_offset(mem, index);
            std::uint64_t size = desc_size(mem, index);
            // Hazard-offset rule 3: reclaim only if free and unpublished.
            if (!hazards_.is_published(mem, start)) {
                unlink_desc(mem, index);
                mem.store<std::uint32_t>(desc(index) + HugeDescField::kFlags,
                                         0);
                publish_desc(mem, index);
                ts.huge_free.insert(start, size);
                ts.free_descs.push_back(index);
            }
        }
        raw = next;
    }
}

bool
HugeHeap::resolve(cxl::MemSession& mem, cxl::HeapOffset offset,
                  pod::MappedRange* out)
{
    if (!contains(offset)) {
        return false;
    }
    auto region =
        static_cast<std::uint32_t>((offset - data_base_) / region_size_);
    cxl::ThreadId owner_tid = region_owner(mem, region);
    if (owner_tid == cxl::kNoThread) {
        return false;
    }
    std::uint32_t index = find_desc(mem, owner_tid, offset,
                                    /*require_live=*/true);
    if (index == kNoDesc) {
        return false;
    }
    std::uint64_t start = desc_offset(mem, index);
    std::uint64_t size = desc_size(mem, index);
    // PC-T: this process is about to install the mapping — protect it from
    // reclamation first (hazard-offset rule 1). No validation step needed:
    // the racing free would be an application use-after-free (§3.3.2).
    hazards_.publish(mem, start);
    out->start = start;
    out->len = size;
    return true;
}

// ----------------------------------------------------------------- recovery

void
HugeHeap::rebuild_thread_state(pod::ThreadContext& ctx, ThreadState& ts)
{
    cxl::MemSession& mem = ctx.mem();
    cxl::ThreadId me = mem.tid();
    ts.huge_free.clear();
    ts.free_descs.clear();

    // Address space: every region the reservation array grants me...
    for (std::uint32_t region = 0; region < num_regions_; region++) {
        if (region_owner(mem, region) == me) {
            ts.huge_free.insert(layout_->huge_region_data(region),
                                region_size_);
        }
    }
    // ...minus every allocation my descriptor list still records
    // (paper §3.4.2: HugeLocal.free is deterministically reconstructible).
    cxl::HeapOffset head = layout_->huge_local(me);
    mem.flush(head, 8);
    std::uint32_t raw = mem.load<std::uint32_t>(head);
    std::uint32_t steps = 0;
    std::vector<bool> linked(descs_per_thread_, false);
    while (raw != 0 && steps++ <= layout_->huge_desc_count()) {
        std::uint32_t index = raw - 1;
        refetch_desc(mem, index);
        std::uint32_t base = me * descs_per_thread_;
        if (index >= base && index < base + descs_per_thread_) {
            linked[index - base] = true;
        }
        if (desc_flags(mem, index) & HugeDescField::kFlagAllocated) {
            ts.huge_free.remove(desc_offset(mem, index),
                                desc_size(mem, index));
        }
        raw = desc_next(mem, index);
    }
    // Free descriptors: my pool slice, flags == 0, not linked (a linked
    // flags==0 descriptor is an interrupted reclaim finished by cleanup()).
    for (std::uint32_t i = 0; i < descs_per_thread_; i++) {
        std::uint32_t index = me * descs_per_thread_ + i;
        refetch_desc(mem, index);
        if (desc_flags(mem, index) == 0 && !linked[i]) {
            ts.free_descs.push_back(index);
        }
    }
    // Stale hazards: a crash between unmap and hazard removal leaves a
    // hazard naming a mapping this process no longer holds.
    for (std::uint32_t slot = 0; slot < hazards_.slots_per_thread(); slot++) {
        cxl::HeapOffset at = hazards_.slot_offset(me, slot);
        mem.flush(at, 8);
        std::uint64_t value = mem.load<std::uint64_t>(at);
        if (value != 0 && !ctx.process().is_mapped(value)) {
            hazards_.remove(mem, slot);
        }
    }
}

void
HugeHeap::recover(pod::ThreadContext& ctx, ThreadState& ts,
                  const OpRecord& record)
{
    cxl::MemSession& mem = ctx.mem();
    switch (record.op) {
      case Op::HugeReserve:
        // Ownership is re-derived from the reservation array by
        // rebuild_thread_state; nothing else to repair.
        break;
      case Op::HugeAlloc: {
        std::uint32_t index = record.index;
        refetch_desc(mem, index);
        std::uint32_t flags = desc_flags(mem, index);
        if (flags == 0) {
            break; // descriptor publish never landed: nothing allocated
        }
        // Complete the allocation (the pointer never reached the
        // application; its own recovery log reclaims the object).
        if (!on_desc_list(mem, mem.tid(), index)) {
            link_desc(mem, index);
        }
        std::uint64_t start = desc_offset(mem, index);
        if (!hazards_.is_published(mem, start)) {
            hazards_.publish(mem, start);
        }
        ctx.process().install_mapping(start, desc_size(mem, index));
        break;
      }
      case Op::HugeFree: {
        std::uint32_t index = record.index;
        refetch_desc(mem, index);
        std::uint32_t flags = desc_flags(mem, index);
        if (flags == 0) {
            break; // already reclaimed
        }
        if (flags & HugeDescField::kFlagAllocated) {
            std::uint64_t start = desc_offset(mem, index);
            std::uint64_t size = desc_size(mem, index);
            mem.store<std::uint32_t>(desc(index) + HugeDescField::kFlags,
                                     HugeDescField::kFlagAllocated |
                                         HugeDescField::kFlagFree);
            publish_desc(mem, index);
            ctx.process().remove_mapping(start, size);
            hazards_.remove_value(mem, start);
        }
        break;
      }
      default:
        CXL_PANIC("huge heap asked to recover a non-huge operation");
    }
    (void)ts;
}

// -------------------------------------------------------------- diagnostics

void
HugeHeap::check_invariants(cxl::MemSession& mem)
{
    for (std::uint32_t tid = 1; tid <= cxl::kMaxThreads; tid++) {
        cxl::HeapOffset head = layout_->huge_local(tid);
        mem.flush(head, 8);
        std::uint32_t raw = mem.load<std::uint32_t>(head);
        std::uint32_t steps = 0;
        while (raw != 0) {
            CXL_ASSERT(++steps <= layout_->huge_desc_count(),
                       "huge descriptor list cyclic");
            std::uint32_t index = raw - 1;
            refetch_desc(mem, index);
            std::uint32_t flags = desc_flags(mem, index);
            if (flags & HugeDescField::kFlagAllocated) {
                std::uint64_t start = desc_offset(mem, index);
                std::uint64_t size = desc_size(mem, index);
                CXL_ASSERT(start >= data_base_ && start + size <=
                               data_base_ + static_cast<std::uint64_t>(
                                                num_regions_) * region_size_,
                           "huge allocation outside huge data region");
                auto region = static_cast<std::uint32_t>(
                    (start - data_base_) / region_size_);
                CXL_ASSERT(region_owner(mem, region) == tid,
                           "huge allocation in region owned by another "
                           "thread");
            }
            raw = desc_next(mem, index);
        }
    }
}

HugeHeap::Stats
HugeHeap::stats(cxl::MemSession& mem)
{
    Stats s;
    for (std::uint32_t region = 0; region < num_regions_; region++) {
        if (region_owner(mem, region) != cxl::kNoThread) {
            s.regions_claimed++;
        }
    }
    for (std::uint32_t i = 0; i < layout_->huge_desc_count(); i++) {
        refetch_desc(mem, i);
        std::uint32_t flags = desc_flags(mem, i);
        if ((flags & HugeDescField::kFlagAllocated) &&
            !(flags & HugeDescField::kFlagFree)) {
            s.live_allocations++;
            s.live_bytes += desc_size(mem, i);
        }
    }
    return s;
}

} // namespace cxlalloc
