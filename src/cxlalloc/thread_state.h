/// @file
/// Volatile (host-side) per-thread allocator state. Everything here is
/// reconstructible from shared heap metadata, so it dies with the thread
/// and is rebuilt on attach or recovery (paper §3.4.2).

#pragma once

#include <cstdint>
#include <vector>

#include "cxlalloc/interval_set.h"
#include "sync/detectable_cas.h"

namespace cxlalloc {

struct ThreadState {
    /// Last detectable-CAS version used (15-bit circular). Restored from
    /// the recovery record on adoption of a crashed slot.
    std::uint16_t version = 0;

    /// Free huge-heap virtual address space owned by this thread
    /// (HugeLocal.free). Rebuilt from the reservation array and the huge
    /// descriptor list.
    IntervalSet huge_free;

    /// Free huge descriptor indices from this thread's pool slice.
    std::vector<std::uint32_t> free_descs;

    /// Allocates the next CAS version.
    std::uint16_t
    next_version()
    {
        version = (version + 1) & cxlsync::kVersionMask;
        return version;
    }
};

} // namespace cxlalloc
