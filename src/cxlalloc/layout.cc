#include "cxlalloc/layout.h"

#include "common/assert.h"
#include "common/cacheline.h"
#include "sync/hazard_offsets.h"

namespace cxlalloc {

using cxlcommon::align_up;

const char*
to_string(SlabState s)
{
    switch (s) {
      case SlabState::Unmapped:
        return "unmapped";
      case SlabState::Global:
        return "global";
      case SlabState::TlUnsized:
        return "tl-unsized";
      case SlabState::TlSized:
        return "tl-sized";
      case SlabState::Detached:
        return "detached";
      case SlabState::Disowned:
        return "disowned";
    }
    return "?";
}

Layout::Layout(const Config& config)
    : config_(config)
{
    CXL_FATAL_IF(config.small_slabs == 0 || config.large_slabs == 0 ||
                     config.huge_regions == 0,
                 "heap capacities must be nonzero");
    CXL_FATAL_IF(config.huge_region_size % cxl::kPageSize != 0,
                 "huge region size must be page aligned");
    CXL_FATAL_IF(config.base % cxl::kPageSize != 0,
                 "layout base must be page aligned");

    constexpr std::uint32_t kRows = cxl::kMaxThreads + 1;

    // ---- HWcc region: everything synchronization-bearing, packed first.
    // Offset base+0 is reserved (for the base-0 heap a null HeapOffset
    // must never name live data; pod shards keep the window head free so
    // all shards are congruent), so the help array starts one cacheline in.
    HeapOffset at = config.base + cxlcommon::kCacheLine;
    help_array_ = at;
    at += kRows * 8;
    small_global_ = at;
    at += 16; // len + free
    large_global_ = at;
    at += 16;
    huge_reservations_ = at;
    at += static_cast<HeapOffset>(config.huge_regions) * 8;
    small_hwcc_desc_ = at;
    at += static_cast<HeapOffset>(config.small_slabs) * 8;
    large_hwcc_desc_ = at;
    at += static_cast<HeapOffset>(config.large_slabs) * 8;
    app_sync_ = align_up(at, cxlcommon::kCacheLine);
    at = app_sync_ + align_up(config.app_sync_bytes, cxlcommon::kCacheLine);
    hwcc_end_ = align_up(at, cxl::kPageSize);

    // ---- SWcc metadata.
    at = hwcc_end_;
    recovery_rows_ = at;
    at += kRows * 64;
    small_local_ = at;
    at += kRows * kLocalStride;
    large_local_ = at;
    at += kRows * kLocalStride;
    huge_local_ = at;
    at += kRows * 64;
    hazard_table_ = at;
    at += cxlsync::HazardOffsets::footprint(config.hazard_slots_per_thread);
    at = align_up(at, cxlcommon::kCacheLine);
    small_swcc_desc_ = at;
    at += static_cast<HeapOffset>(config.small_slabs) * kSmallDescStride;
    large_swcc_desc_ = at;
    at += static_cast<HeapOffset>(config.large_slabs) * kLargeDescStride;
    huge_desc_pool_ = at;
    at += static_cast<HeapOffset>(huge_desc_count()) * HugeDescField::kStride;

    // ---- Data regions (page aligned; each one models a virtual address
    // space reservation from paper Fig. 2).
    small_data_ = align_up(at, cxl::kPageSize);
    large_data_ = small_data_ +
                  static_cast<HeapOffset>(config.small_slabs) * kSmallSlabSize;
    huge_data_ = large_data_ +
                 static_cast<HeapOffset>(config.large_slabs) * kLargeSlabSize;
    end_ = huge_data_ + static_cast<HeapOffset>(config.huge_regions) *
                            config.huge_region_size;
}

cxl::DeviceConfig
Layout::device_config(cxl::CoherenceMode mode, bool simulate_cache) const
{
    cxl::DeviceConfig dev;
    dev.size = align_up(end_ - config_.base, cxl::kPageSize);
    dev.mode = mode;
    dev.sync_region_size = hwcc_end_ - config_.base;
    dev.simulate_cache = simulate_cache;
    return dev;
}

} // namespace cxlalloc
