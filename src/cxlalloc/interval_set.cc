#include "cxlalloc/interval_set.h"

#include "common/assert.h"

namespace cxlalloc {

void
IntervalSet::insert(std::uint64_t start, std::uint64_t len)
{
    CXL_ASSERT(len > 0, "inserting empty interval");
    std::uint64_t added = len;
    auto next = by_start_.lower_bound(start);
    // Check overlap with the following interval.
    CXL_ASSERT(next == by_start_.end() || start + len <= next->first,
               "interval overlaps successor");
    // Merge with predecessor if adjacent.
    if (next != by_start_.begin()) {
        auto prev = std::prev(next);
        CXL_ASSERT(prev->first + prev->second <= start,
                   "interval overlaps predecessor");
        if (prev->first + prev->second == start) {
            start = prev->first;
            len += prev->second;
            by_start_.erase(prev);
        }
    }
    // Merge with successor if adjacent.
    if (next != by_start_.end() && start + len == next->first) {
        len += next->second;
        by_start_.erase(next);
    }
    by_start_[start] = len;
    // The merges only coalesce existing bytes; the net growth is exactly
    // the caller's range.
    total_ += added;
}

void
IntervalSet::remove(std::uint64_t start, std::uint64_t len)
{
    CXL_ASSERT(len > 0, "removing empty interval");
    auto it = by_start_.upper_bound(start);
    CXL_ASSERT(it != by_start_.begin(), "remove: range not free");
    --it;
    std::uint64_t is = it->first;
    std::uint64_t il = it->second;
    CXL_ASSERT(is <= start && start + len <= is + il,
               "remove: range not fully contained");
    by_start_.erase(it);
    if (is < start) {
        by_start_[is] = start - is;
    }
    if (start + len < is + il) {
        by_start_[start + len] = is + il - (start + len);
    }
    total_ -= len;
}

bool
IntervalSet::take(std::uint64_t len, std::uint64_t* start)
{
    // Best fit: smallest interval that still fits. Linear scan is fine —
    // huge allocations are rare and long-lived (paper §3.3.2).
    auto best = by_start_.end();
    for (auto it = by_start_.begin(); it != by_start_.end(); ++it) {
        if (it->second >= len &&
            (best == by_start_.end() || it->second < best->second)) {
            best = it;
        }
    }
    if (best == by_start_.end()) {
        return false;
    }
    *start = best->first;
    std::uint64_t remaining = best->second - len;
    std::uint64_t tail = best->first + len;
    by_start_.erase(best);
    if (remaining > 0) {
        by_start_[tail] = remaining;
    }
    total_ -= len;
    return true;
}

bool
IntervalSet::contains(std::uint64_t start, std::uint64_t len) const
{
    auto it = by_start_.upper_bound(start);
    if (it == by_start_.begin()) {
        return false;
    }
    --it;
    return it->first <= start && start + len <= it->first + it->second;
}

void
IntervalSet::clear()
{
    by_start_.clear();
    total_ = 0;
}

} // namespace cxlalloc
