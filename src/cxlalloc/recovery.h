/// @file
/// The 8-byte per-thread redo record (paper §3.4.2).
///
/// "Each thread atomically updates 8 bytes of state in place, which records
/// which operation the thread is currently performing, and contains enough
/// information to recover the operation in an idempotent manner."
///
/// Word packing (64 bits):
///     [ index:32 | version:15 | aux:13 | op:4 ]
/// where index is a slab / huge-descriptor / reservation-region index,
/// version is the detectable-CAS version the operation used (15-bit
/// circular), and aux carries the size class or block index plus a bit
/// selecting the small vs large heap.
///
/// The record is single-writer (its thread) and written before the
/// operation's first shared-visible step; the next operation overwrites
/// it, so on recovery exactly one — possibly interrupted, possibly
/// completed — operation needs an idempotent redo.
///
/// Durability discipline (the fence-elision case analysis):
///  - Operations that publish through a detectable CAS (PopGlobal,
///    Extend, FreeRemote[Batch], PushGlobal, Huge*) use log(): store +
///    flush + fence before the CAS. After a HOST crash the record that
///    described the CAS must be durable for `did_succeed` version
///    reasoning to hold. Guarded by sched::RecordFlushOracle (and the
///    skip_record_publish_flush fault shows the oracle has teeth).
///  - Purely local operations (Alloc, FreeLocal, scavenge, and the
///    Detach/Disown descriptor transitions) use log_local(): store only.
///    Recovery from a PROCESS crash writes the thread's cache back (see
///    ThreadCache::writeback_all()), so recovery always reads the newest
///    record; no flush or fence is needed on the fast path. Guarded by
///    litmus shape MpCoalesced + tests/sched RecordFlushOracle suites and
///    SwccProtocol.OwnerKeepsDescriptorCached.
///  - A deferred record is written back at the latest by the next
///    flush_pending() (flush_desc folds it into the publication's
///    existing fence) or the next log()/clear() of the same row.
///  - HOST crashes drop the cache instead of writing it back, and the
///    redo of Alloc/FreeLocal mutates the bitset unconditionally — so the
///    device must never hold a later operation's effect next to a stale
///    record (replaying an outdated FreeLocal would re-free a block that
///    was re-allocated since: double allocation). Explicit flushes are
///    protocol-ordered (flush_pending rides every flush_desc), which
///    leaves capacity EVICTIONS as the only out-of-order durability
///    channel. log_local() therefore registers the record row as the
///    session cache's *durable line*: ThreadCache persists its newest
///    value ahead of any other dirty victim's early write-back, keeping
///    the durable record at least as new as every durable effect. Guarded
///    by CrashRecovery.HostCrashEvictionCannotResurrectStaleRecord and
///    CacheModelTest.DurableLinePersistsAheadOfDirtyEvictions.

#pragma once

#include <array>
#include <cstdint>

#include "common/test_faults.h"
#include "cxl/mem_ops.h"
#include "cxlalloc/layout.h"

namespace cxlalloc {

/// Operation codes (4 bits). Slab operations apply to the small or large
/// heap according to the aux heap bit.
enum class Op : std::uint8_t {
    None = 0,
    Alloc = 1,      ///< clear one block bit            (aux: heap|block)
    Init = 2,       ///< unsized -> sized slab init     (aux: heap|class)
    PopGlobal = 3,  ///< global -> TL unsized           (dcas)
    Extend = 4,     ///< grow heap length               (dcas)
    Detach = 5,     ///< full slab, no remote frees
    Disown = 6,     ///< full slab with remote frees
    FreeLocal = 7,  ///< set one block bit              (aux: heap|block)
    FreeRemote = 8, ///< decrement remote counter       (dcas; may steal)
    PushGlobal = 9, ///< TL unsized overflow -> global  (dcas)
    HugeReserve = 10, ///< claim a reservation region   (dcas)
    HugeAlloc = 11,   ///< build + link huge descriptor
    HugeFree = 12,    ///< set huge descriptor free bit
    /// A ring of remote-free decrements submitted as one batched NMP
    /// doorbell (aux: heap|count; version: LAST of `count` consecutive
    /// dcas versions, so recovery resumes versioning past the whole
    /// batch). The per-operand redo state — which slabs, which versions,
    /// which executed — lives in the thread's NMP operand ring, which is
    /// device memory and survives the crash; see
    /// SlabHeap::deallocate_batch and its recover case.
    FreeRemoteBatch = 13,
    /// An application (or migrator) reference-cell publish through the
    /// allocator's detectable CAS (CxlAllocator::cell_publish): consumes
    /// one CAS version but needs no heap redo. The record exists so the
    /// version counter resumes past the publish on recovery — without it
    /// an adopted slot could reuse the version and corrupt did_succeed
    /// reasoning (the help array may already have advanced to it).
    CellPublish = 14,
};

const char* to_string(Op op);

/// Decoded recovery record.
struct OpRecord {
    Op op = Op::None;
    bool large_heap = false;   ///< aux bit 12: slab op targets large heap
    std::uint16_t aux = 0;     ///< class or block index (12 bits)
    std::uint16_t version = 0; ///< detectable-CAS version (15 bits)
    std::uint32_t index = 0;   ///< slab / descriptor / region index

    std::uint64_t pack() const;
    static OpRecord unpack(std::uint64_t word);

    static constexpr std::uint16_t kAuxMask = 0x0fff;
};

/// Writes and reads per-thread recovery records in the shared heap.
class RecoveryLog {
  public:
    RecoveryLog(const Layout* layout, bool enabled)
        : layout_(layout), enabled_(enabled)
    {
    }

    /// True in the recoverable build; false in the cxlalloc-nonrecoverable
    /// ablation, where log() is a no-op.
    bool enabled() const { return enabled_; }

    /// Publishes @p record as the calling thread's in-flight operation
    /// and makes it durable: 8-byte store, flush, fence. Required before
    /// any detectable CAS (see the header discipline).
    void
    log(cxl::MemSession& mem, const OpRecord& record)
    {
        if (!enabled_) {
            return;
        }
        cxl::HeapOffset row = layout_->recovery_row(mem.tid());
        mem.store<std::uint64_t>(row, record.pack());
        if (cxlcommon::test_faults::skip_record_publish_flush) {
            // Deliberately-broken variant: defer where deferral is NOT
            // sound. RecordFlushOracle must catch the dirty row at the
            // next DcasTry.
            pending_[mem.tid()] = true;
            return;
        }
        mem.flush(row, 8);
        mem.fence();
        pending_[mem.tid()] = false;
    }

    /// Records a purely local operation: 8-byte store only, no ordering.
    /// Sound because process-crash recovery writes the cache back before
    /// reading the record, and because the row is registered as the
    /// session's durable line — the cache persists its newest value ahead
    /// of any dirty capacity eviction, so even a HOST crash never pairs a
    /// durable later effect with a stale durable record (see the header
    /// discipline). The row is otherwise written back opportunistically by
    /// the next flush_pending() / log() / clear().
    void
    log_local(cxl::MemSession& mem, const OpRecord& record)
    {
        if (!enabled_) {
            return;
        }
        cxl::HeapOffset row = layout_->recovery_row(mem.tid());
        mem.set_durable_row(row);
        mem.store<std::uint64_t>(row, record.pack());
        pending_[mem.tid()] = true;
    }

    /// Writes back a deferred record (flush only — the caller's fence
    /// completes it). flush_desc calls this right before its fence, so a
    /// Detach/Disown/PushGlobal record rides the descriptor publication's
    /// existing ordering at zero extra fences.
    void
    flush_pending(cxl::MemSession& mem)
    {
        if (!enabled_ || !pending_[mem.tid()]) {
            return;
        }
        mem.flush(layout_->recovery_row(mem.tid()), 8);
        pending_[mem.tid()] = false;
    }

    /// Reads thread @p tid's last record (used by that thread's recovery).
    OpRecord
    read(cxl::MemSession& mem, cxl::ThreadId tid)
    {
        cxl::HeapOffset row = layout_->recovery_row(tid);
        mem.flush(row, 8); // refetch: never act on a stale cached record
        return OpRecord::unpack(mem.load<std::uint64_t>(row));
    }

    /// Clears the record after a completed recovery.
    void
    clear(cxl::MemSession& mem)
    {
        cxl::HeapOffset row = layout_->recovery_row(mem.tid());
        mem.store<std::uint64_t>(row, 0);
        mem.flush(row, 8);
        mem.fence();
        pending_[mem.tid()] = false;
    }

  private:
    const Layout* layout_;
    bool enabled_;
    /// Per-thread "record stored but not yet written back" flags.
    /// Single-writer (each slot only by its own thread), like the rows.
    std::array<bool, cxl::kMaxThreads + 1> pending_{};
};

/// Named crash-injection points (white-box recovery tests, paper §5.1).
namespace crashpoint {

inline constexpr int kAfterRecord = 1;     ///< record flushed, op not begun
inline constexpr int kMidInit = 2;         ///< popped unsized, not pushed
inline constexpr int kAfterDcas = 3;       ///< dcas applied, post-work not
inline constexpr int kMidSteal = 4;        ///< counter hit 0, steal not done
inline constexpr int kMidDetach = 5;       ///< desc flushed, not unlinked
inline constexpr int kMidFreeLocal = 6;    ///< bit set, lists not fixed
inline constexpr int kMidPushGlobal = 7;   ///< desc flushed, dcas not done
inline constexpr int kMidHugeAlloc = 8;    ///< desc written, not linked
inline constexpr int kMidHugeMap = 9;      ///< hazard published, not mapped
inline constexpr int kMidHugeFree = 10;    ///< free bit set, not unmapped
inline constexpr int kMidAlloc = 11;       ///< bit cleared, not returned
inline constexpr int kMidBatchStage = 12;  ///< ring staged, record not logged
inline constexpr int kMidBatchDoorbell = 13; ///< record logged, doorbell not rung
inline constexpr int kMidBatchDrain = 14;  ///< doorbell rung, results not drained

} // namespace crashpoint

/// Registers the allocator's crash points with pod::CrashPointRegistry
/// (idempotent; called by the Allocator constructor, callable directly by
/// tools that never build an allocator).
void register_crash_points();

} // namespace cxlalloc
