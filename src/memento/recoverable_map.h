/// @file
/// A Memento-style detectably-recoverable hash map (paper Fig. 7, [18]):
/// the lock-free index plus a per-thread application redo record so that a
/// crashed thread's in-flight insert or remove can be finished on recovery
/// without leaking the node.

#pragma once

#include <cstdint>

#include "kv/hash_table.h"
#include "pod/thread_context.h"

namespace memento {

namespace mcrash {
inline constexpr int kMapAfterAlloc = 110;
inline constexpr int kMapAfterRecord = 111;
inline constexpr int kMapAfterLink = 112;
} // namespace mcrash

/// Registers the map's crash points with pod::CrashPointRegistry
/// (idempotent; also called by the RecoverableMap constructor).
void register_map_crash_points();

class RecoverableMap {
  public:
    /// Metadata footprint: per-thread 16 B records.
    static std::uint64_t
    meta_size()
    {
        return (cxl::kMaxThreads + 1) * 16;
    }

    /// @param meta     zeroed device area of meta_size() bytes;
    /// @param buckets  zeroed device area of kv::HashTable::footprint(n).
    RecoverableMap(pod::Pod& pod, cxl::HeapOffset meta,
                   cxl::HeapOffset buckets, std::uint64_t num_buckets,
                   baselines::PodAllocator* alloc);

    /// Inserts key @p id with a @p vlen-byte value; detectably recoverable.
    bool insert(pod::ThreadContext& ctx, std::uint64_t id,
                std::uint32_t vlen);

    /// Removes key @p id.
    bool remove(pod::ThreadContext& ctx, std::uint64_t id);

    bool contains(pod::ThreadContext& ctx, std::uint64_t id);

    /// Recovers the crashed slot @p ctx adopted (run after the allocator's
    /// own recovery).
    void recover(pod::ThreadContext& ctx);

    kv::HashTable& table() { return table_; }

    /// Live node walk (GC roots for ralloc-style recovery).
    template <typename F>
    void
    for_each_node(F&& visit)
    {
        table_.for_each_node(visit);
    }

    void clear(pod::ThreadContext& ctx) { table_.clear(ctx); }

  private:
    enum class MOp : std::uint8_t { None = 0, Insert = 1, Remove = 2 };

    cxl::HeapOffset record_off(cxl::ThreadId tid) const;
    void write_record(cxl::MemSession& mem, MOp op, std::uint64_t id);

    pod::Pod& pod_;
    cxl::HeapOffset meta_;
    kv::HashTable table_;
    baselines::PodAllocator* alloc_;
};

} // namespace memento
