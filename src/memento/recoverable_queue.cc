#include "memento/recoverable_queue.h"

#include <cstring>

#include "common/assert.h"
#include "pod/crashpoint.h"

namespace memento {

void
register_queue_crash_points()
{
    pod::CrashPointRegistry& reg = pod::CrashPointRegistry::instance();
    reg.add(qcrash::kAfterAlloc, "queue.after_alloc",
            "RecoverableQueue::push");
    reg.add(qcrash::kAfterRecord, "queue.after_record",
            "RecoverableQueue::push");
    reg.add(qcrash::kAfterLink, "queue.after_link", "RecoverableQueue::push");
    reg.add(qcrash::kAfterUnlink, "queue.after_unlink",
            "RecoverableQueue::pop");
}

namespace {

/// Record word 0: [ node:48 | version:15 | op:... ] — keep it simple with
/// two words: word0 = op | version << 8; word1 = node offset.
std::uint64_t
pack_meta(std::uint8_t op, std::uint16_t version)
{
    return static_cast<std::uint64_t>(op) |
           (static_cast<std::uint64_t>(version) << 8);
}

} // namespace

std::uint64_t
RecoverableQueue::meta_size()
{
    return 8 /*head*/ + (cxl::kMaxThreads + 1) * 8 /*help*/ +
           (cxl::kMaxThreads + 1) * 16 /*records*/;
}

RecoverableQueue::RecoverableQueue(pod::Pod& pod, cxl::HeapOffset meta,
                                   baselines::PodAllocator* alloc)
    : pod_(pod), head_(meta),
      records_(meta + 8 + (cxl::kMaxThreads + 1) * 8), alloc_(alloc),
      dcas_(meta + 8)
{
    register_queue_crash_points();
}

cxl::HeapOffset
RecoverableQueue::record_off(cxl::ThreadId tid) const
{
    return records_ + static_cast<cxl::HeapOffset>(tid) * 16;
}

void
RecoverableQueue::write_record(cxl::MemSession& mem, QOp op,
                               std::uint16_t version, std::uint64_t node)
{
    cxl::HeapOffset at = record_off(mem.tid());
    mem.store<std::uint64_t>(at, pack_meta(static_cast<std::uint8_t>(op),
                                           version));
    mem.store<std::uint64_t>(at + 8, node);
    mem.flush(at, 16);
    mem.fence();
}

bool
RecoverableQueue::push(pod::ThreadContext& ctx, std::uint64_t size,
                       unsigned char fill)
{
    cxl::MemSession& mem = ctx.mem();
    std::uint64_t total = 8 + size; // next word + payload
    cxl::HeapOffset node = alloc_->allocate(ctx, total);
    if (node == 0) {
        return false;
    }
    ctx.maybe_crash(qcrash::kAfterAlloc);
    std::memset(mem.data_ptr(node, total) + 8, fill, size);
    std::uint16_t ver =
        versions_[mem.tid()] = (versions_[mem.tid()] + 1) &
                               cxlsync::kVersionMask;
    write_record(mem, QOp::Push, ver, node);
    ctx.maybe_crash(qcrash::kAfterRecord);
    std::uint32_t head = dcas_.read(mem, head_);
    while (true) {
        mem.store<std::uint64_t>(node, static_cast<std::uint64_t>(head) * 8);
        auto r = dcas_.try_cas(mem, head_, head,
                               static_cast<std::uint32_t>(node / 8), ver);
        if (r.success) {
            break;
        }
        head = r.observed;
    }
    ctx.maybe_crash(qcrash::kAfterLink);
    return true;
}

bool
RecoverableQueue::pop(pod::ThreadContext& ctx)
{
    cxl::MemSession& mem = ctx.mem();
    while (true) {
        std::uint32_t head = dcas_.read(mem, head_);
        if (head == 0) {
            return false;
        }
        std::uint64_t node = static_cast<std::uint64_t>(head) * 8;
        std::uint64_t next = mem.load<std::uint64_t>(node);
        std::uint16_t ver =
            versions_[mem.tid()] = (versions_[mem.tid()] + 1) &
                                   cxlsync::kVersionMask;
        // Record the node we are trying to take, per attempt, so recovery
        // can finish the free if we die after the CAS.
        write_record(mem, QOp::Pop, ver, node);
        auto r = dcas_.try_cas(mem, head_, head,
                               static_cast<std::uint32_t>(next / 8), ver);
        if (r.success) {
            ctx.maybe_crash(qcrash::kAfterUnlink);
            alloc_->deallocate(ctx, node);
            // Close the record: without this, a later crash would make
            // recovery double-free the node.
            write_record(mem, QOp::None, ver, 0);
            return true;
        }
    }
}

void
RecoverableQueue::recover(pod::ThreadContext& ctx)
{
    cxl::MemSession& mem = ctx.mem();
    cxl::HeapOffset at = record_off(mem.tid());
    mem.flush(at, 16);
    std::uint64_t meta = mem.load<std::uint64_t>(at);
    std::uint64_t node = mem.load<std::uint64_t>(at + 8);
    auto op = static_cast<QOp>(meta & 0xff);
    auto version = static_cast<std::uint16_t>(meta >> 8);
    versions_[mem.tid()] = version;
    switch (op) {
      case QOp::None:
        break;
      case QOp::Push: {
        if (node == 0) {
            break;
        }
        if (dcas_.did_succeed(mem, head_, version)) {
            break; // publication landed
        }
        // Object allocated but never published: complete the push so the
        // object is neither lost nor leaked.
        std::uint16_t ver =
            versions_[mem.tid()] = (versions_[mem.tid()] + 1) &
                                   cxlsync::kVersionMask;
        std::uint32_t head = dcas_.read(mem, head_);
        while (true) {
            mem.store<std::uint64_t>(node,
                                     static_cast<std::uint64_t>(head) * 8);
            auto r = dcas_.try_cas(mem, head_, head,
                                   static_cast<std::uint32_t>(node / 8), ver);
            if (r.success) {
                break;
            }
            head = r.observed;
        }
        break;
      }
      case QOp::Pop: {
        if (node != 0 && dcas_.did_succeed(mem, head_, version)) {
            // We unlinked the node but died before freeing it.
            alloc_->deallocate(ctx, node);
        }
        break;
      }
    }
    write_record(mem, QOp::None, versions_[mem.tid()], 0);
}

void
RecoverableQueue::drain(pod::ThreadContext& ctx)
{
    while (pop(ctx)) {
    }
}

std::uint64_t
RecoverableQueue::approximate_size(pod::ThreadContext& ctx)
{
    std::uint64_t n = 0;
    for_each(ctx, [&](cxl::HeapOffset) { n++; });
    return n;
}

} // namespace memento
