/// @file
/// A Memento-style detectably-recoverable queue (paper Fig. 7, [18]).
///
/// Memento composes data structures from detectable primitives so that a
/// crashed thread's in-flight operation can be completed (or observed as
/// complete) on recovery. This reproduction uses one detectable CAS per
/// operation on the queue head plus a per-thread 16-byte application redo
/// record — the same recoverability contract, over any PodAllocator.
///
/// Service order is LIFO (a Treiber structure): Fig. 7 measures allocation
/// churn and recovery behaviour, both independent of FIFO-vs-LIFO order;
/// the single-CAS detectable publication step is what matters.

#pragma once

#include <cstdint>

#include "baselines/pod_allocator.h"
#include "pod/pod.h"
#include "pod/thread_context.h"
#include "sync/detectable_cas.h"

namespace memento {

/// Application-level crash points (distinct from the allocator's).
namespace qcrash {
inline constexpr int kAfterAlloc = 100;  ///< object allocated, not recorded
inline constexpr int kAfterRecord = 101; ///< record written, not linked
inline constexpr int kAfterLink = 102;   ///< linked, op record still open
inline constexpr int kAfterUnlink = 103; ///< popped, object not yet freed
} // namespace qcrash

/// Registers the queue's crash points with pod::CrashPointRegistry
/// (idempotent; also called by the RecoverableQueue constructor).
void register_queue_crash_points();

class RecoverableQueue {
  public:
    /// Shared metadata footprint: head word + detectable-CAS help array +
    /// per-thread records.
    static std::uint64_t meta_size();

    /// @param meta  device offset (inside the sync region) of a zeroed
    ///              area of meta_size() bytes.
    RecoverableQueue(pod::Pod& pod, cxl::HeapOffset meta,
                     baselines::PodAllocator* alloc);

    /// Allocates an object of @p size, fills it with @p fill, and
    /// detectably publishes it. Returns false on allocation failure.
    bool push(pod::ThreadContext& ctx, std::uint64_t size,
              unsigned char fill);

    /// Pops one object and frees it; false if empty.
    bool pop(pod::ThreadContext& ctx);

    /// Recovers the crashed slot @p ctx adopted: finishes or re-executes
    /// its in-flight queue operation (and the object free a crashed pop
    /// left behind). Call AFTER the allocator's own recovery.
    void recover(pod::ThreadContext& ctx);

    /// Quiescent walk of the queue's live objects (GC roots for
    /// ralloc-style recovery).
    template <typename F>
    void
    for_each(pod::ThreadContext& ctx, F&& visit)
    {
        std::uint64_t node = dcas_.read(ctx.mem(), head_) * 8ULL;
        while (node != 0) {
            visit(static_cast<cxl::HeapOffset>(node));
            node = ctx.mem().load<std::uint64_t>(node);
        }
    }

    /// Pops and frees everything (teardown).
    void drain(pod::ThreadContext& ctx);

    std::uint64_t approximate_size(pod::ThreadContext& ctx);

  private:
    enum class QOp : std::uint8_t { None = 0, Push = 1, Pop = 2 };

    cxl::HeapOffset record_off(cxl::ThreadId tid) const;
    void write_record(cxl::MemSession& mem, QOp op, std::uint16_t version,
                      std::uint64_t node);

    pod::Pod& pod_;
    cxl::HeapOffset head_;    ///< detectable-CAS word (value = offset / 8)
    cxl::HeapOffset records_; ///< per-thread 16 B app records
    baselines::PodAllocator* alloc_;
    cxlsync::DetectableCas dcas_;
    /// Volatile per-thread version counters (restored from records).
    std::uint16_t versions_[cxl::kMaxThreads + 1] = {};
};

} // namespace memento
