#include "memento/recoverable_map.h"

#include <cstring>
#include <vector>

#include "common/assert.h"
#include "pod/crashpoint.h"

namespace memento {

void
register_map_crash_points()
{
    pod::CrashPointRegistry& reg = pod::CrashPointRegistry::instance();
    reg.add(mcrash::kMapAfterAlloc, "map.after_alloc",
            "RecoverableMap::insert");
    reg.add(mcrash::kMapAfterRecord, "map.after_record",
            "RecoverableMap::insert");
    reg.add(mcrash::kMapAfterLink, "map.after_link", "RecoverableMap::insert");
}

RecoverableMap::RecoverableMap(pod::Pod& pod, cxl::HeapOffset meta,
                               cxl::HeapOffset buckets,
                               std::uint64_t num_buckets,
                               baselines::PodAllocator* alloc)
    : pod_(pod), meta_(meta), table_(pod, buckets, num_buckets, alloc),
      alloc_(alloc)
{
    register_map_crash_points();
}

cxl::HeapOffset
RecoverableMap::record_off(cxl::ThreadId tid) const
{
    return meta_ + static_cast<cxl::HeapOffset>(tid) * 16;
}

void
RecoverableMap::write_record(cxl::MemSession& mem, MOp op, std::uint64_t arg)
{
    cxl::HeapOffset at = record_off(mem.tid());
    mem.store<std::uint64_t>(at, static_cast<std::uint64_t>(op));
    mem.store<std::uint64_t>(at + 8, arg);
    mem.flush(at, 16);
    mem.fence();
}

bool
RecoverableMap::insert(pod::ThreadContext& ctx, std::uint64_t id,
                       std::uint32_t vlen)
{
    cxl::MemSession& mem = ctx.mem();
    std::vector<unsigned char> value(vlen, 0x5a);
    std::uint64_t node = table_.alloc_node(ctx, &id, sizeof id,
                                           value.data(), vlen);
    if (node == 0) {
        return false;
    }
    ctx.maybe_crash(mcrash::kMapAfterAlloc);
    // Record the unlinked node; recovery completes the publication, so the
    // allocation cannot leak.
    write_record(mem, MOp::Insert, node);
    ctx.maybe_crash(mcrash::kMapAfterRecord);
    table_.link_node(ctx, node);
    ctx.maybe_crash(mcrash::kMapAfterLink);
    return true;
}

bool
RecoverableMap::remove(pod::ThreadContext& ctx, std::uint64_t id)
{
    cxl::MemSession& mem = ctx.mem();
    write_record(mem, MOp::Remove, id);
    bool removed = table_.remove(ctx, &id, sizeof id);
    write_record(mem, MOp::None, 0);
    return removed;
}

bool
RecoverableMap::contains(pod::ThreadContext& ctx, std::uint64_t id)
{
    return table_.get(ctx, &id, sizeof id, nullptr, 0, nullptr);
}

void
RecoverableMap::recover(pod::ThreadContext& ctx)
{
    cxl::MemSession& mem = ctx.mem();
    cxl::HeapOffset at = record_off(mem.tid());
    mem.flush(at, 16);
    auto op = static_cast<MOp>(mem.load<std::uint64_t>(at));
    std::uint64_t arg = mem.load<std::uint64_t>(at + 8);
    switch (op) {
      case MOp::None:
        break;
      case MOp::Insert:
        if (arg != 0 && !table_.contains_node(ctx, arg)) {
            // Node built but never published: finish the insert.
            table_.link_node(ctx, arg);
        }
        break;
      case MOp::Remove:
        // Redo-if-present: if the key is gone the remove completed. (The
        // unlink-to-retire window can leak one node under EBR; Fig. 7's
        // crashes happen during the insertion phase, where this path is
        // not taken.)
        table_.remove(ctx, &arg, sizeof arg);
        break;
    }
    write_record(mem, MOp::None, 0);
}

} // namespace memento
