#include "baselines/lightningish.h"

#include "common/assert.h"
#include "common/cacheline.h"

namespace baselines {

Lightningish::Lightningish(pod::Pod& pod, cxl::HeapOffset arena,
                           std::uint64_t arena_size)
    : pod_(pod), arena_(arena), arena_size_(arena_size)
{
    free_.insert(arena, arena_size);
}

AllocTraits
Lightningish::traits() const
{
    AllocTraits t;
    t.memory = "XP";
    t.cross_process = true;
    t.mmap_support = false;
    t.nonblocking_failure = false;
    t.recovery = AllocTraits::Recovery::Blocking;
    t.strategy = "GC";
    return t;
}

cxl::HeapOffset
Lightningish::allocate(pod::ThreadContext& ctx, std::uint64_t size)
{
    std::uint64_t need = cxlcommon::align_up(size, 8) + 8;
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t start = 0;
    if (!free_.take(need, &start)) {
        return 0;
    }
    // Record the allocation in the tracking array (one entry per live
    // object; this array is Lightning's memory-overhead story).
    std::uint32_t index;
    if (!free_entries_.empty()) {
        index = free_entries_.back();
        free_entries_.pop_back();
    } else {
        index = static_cast<std::uint32_t>(entries_.size());
        entries_.emplace_back();
    }
    Entry& e = entries_[index];
    e.offset = start;
    e.size = need;
    e.owner = ctx.tid();
    e.live = true;
    // Stash the entry index in front of the payload for O(1) free.
    auto* header = reinterpret_cast<std::uint64_t*>(pod_.device().raw(start));
    *header = index;
    pod_.device().note_committed(start, need);
    return start + 8;
}

void
Lightningish::deallocate(pod::ThreadContext&, cxl::HeapOffset offset)
{
    cxl::HeapOffset start = offset - 8;
    std::lock_guard<std::mutex> lock(mu_);
    auto index = static_cast<std::uint32_t>(
        *reinterpret_cast<std::uint64_t*>(pod_.device().raw(start)));
    CXL_ASSERT(index < entries_.size() && entries_[index].live,
               "lightningish: free of untracked allocation");
    Entry& e = entries_[index];
    free_.insert(e.offset, e.size);
    e.live = false;
    free_entries_.push_back(index);
}

void
Lightningish::recover_gc(cxl::ThreadId tid)
{
    // Blocking GC: the mutex is held while every tracking entry is
    // scanned, freezing all other threads out of the allocator.
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t i = 0; i < entries_.size(); i++) {
        Entry& e = entries_[i];
        if (e.live && e.owner == tid) {
            free_.insert(e.offset, e.size);
            e.live = false;
            free_entries_.push_back(i);
        }
    }
}

std::uint64_t
Lightningish::metadata_overhead_bytes()
{
    return entries_.capacity() * sizeof(Entry);
}

} // namespace baselines
