#include "baselines/cxlshmish.h"

#include "common/assert.h"
#include "common/cacheline.h"

namespace baselines {

namespace {

/// Treiber stack head word: [ counter:16 | offset:48 ].
constexpr std::uint64_t kOffsetMask = (1ULL << 48) - 1;

std::uint64_t
head_pack(std::uint64_t offset, std::uint64_t counter)
{
    return (counter << 48) | offset;
}

} // namespace

Cxlshmish::Cxlshmish(pod::Pod& pod, cxl::HeapOffset arena,
                     std::uint64_t arena_size)
    : pod_(pod), arena_(arena), arena_size_(arena_size)
{
}

AllocTraits
Cxlshmish::traits() const
{
    AllocTraits t;
    t.memory = "CXL";
    t.cross_process = true;
    t.mmap_support = false;
    t.nonblocking_failure = true;
    t.recovery = AllocTraits::Recovery::NonBlocking;
    t.strategy = "GC";
    t.refcount_on_access = true;
    t.max_alloc = 1 << 10;
    return t;
}

std::atomic<std::uint64_t>&
Cxlshmish::word(cxl::HeapOffset off)
{
    return *reinterpret_cast<std::atomic<std::uint64_t>*>(
        pod_.device().raw(off));
}

cxl::HeapOffset
Cxlshmish::allocate(pod::ThreadContext&, std::uint64_t size)
{
    if (size > (1 << 10)) {
        // CXL-SHM "does not support allocations larger than 1KiB"; the
        // paper reports it crashing on MC-12/MC-37.
        unsupported_.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }
    std::uint32_t cls = cxlalloc::small_class_for(size);
    std::uint64_t bsize = cxlalloc::small_class_size(cls) + kHeader;
    // Pop from the per-class lock-free stack.
    std::atomic<std::uint64_t>& head = stacks_[cls];
    std::uint64_t h = head.load(std::memory_order_acquire);
    while ((h & kOffsetMask) != 0) {
        std::uint64_t block = h & kOffsetMask;
        std::uint64_t next =
            word(block + kNextOff).load(std::memory_order_acquire);
        if (head.compare_exchange_weak(h,
                                       head_pack(next, (h >> 48) + 1),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
            word(block + kRefcountOff).store(1, std::memory_order_release);
            return block + kHeader;
        }
    }
    // Fresh memory from the bump region.
    std::uint64_t at = bump_.fetch_add(bsize, std::memory_order_relaxed);
    if (at + bsize > arena_size_) {
        return 0;
    }
    cxl::HeapOffset block = arena_ + at;
    word(block + kClassOff).store(cls, std::memory_order_relaxed);
    word(block + kRefcountOff).store(1, std::memory_order_release);
    pod_.device().note_committed(block, bsize);
    return block + kHeader;
}

void
Cxlshmish::deallocate(pod::ThreadContext&, cxl::HeapOffset offset)
{
    cxl::HeapOffset block = offset - kHeader;
    // Drop the allocation's own reference; the last reference pushes the
    // block back on its class stack.
    std::uint64_t prev =
        word(block + kRefcountOff).fetch_sub(1, std::memory_order_acq_rel);
    CXL_ASSERT(prev >= 1, "cxlshmish: refcount underflow");
    if (prev != 1) {
        return; // a reader still holds it
    }
    auto cls = static_cast<std::uint32_t>(
        word(block + kClassOff).load(std::memory_order_relaxed));
    std::atomic<std::uint64_t>& head = stacks_[cls];
    std::uint64_t h = head.load(std::memory_order_acquire);
    do {
        word(block + kNextOff).store(h & kOffsetMask,
                                     std::memory_order_release);
    } while (!head.compare_exchange_weak(h, head_pack(block, (h >> 48) + 1),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire));
}

void
Cxlshmish::on_access(pod::ThreadContext&, cxl::HeapOffset offset)
{
    // Pin the object: one HWcc RMW per access — cheap when uncontended,
    // a coherence hot spot when the key distribution is skewed.
    word(offset - kHeader + kRefcountOff)
        .fetch_add(1, std::memory_order_acq_rel);
}

void
Cxlshmish::after_access(pod::ThreadContext& ctx, cxl::HeapOffset offset)
{
    // Unpin; the last release frees (deallocate handles the push).
    cxl::HeapOffset block = offset - kHeader;
    std::uint64_t prev =
        word(block + kRefcountOff).fetch_sub(1, std::memory_order_acq_rel);
    CXL_ASSERT(prev >= 1, "cxlshmish: refcount underflow on unpin");
    if (prev == 1) {
        // The object was concurrently freed while we held it; finish the
        // free on its behalf.
        word(block + kRefcountOff).fetch_add(1, std::memory_order_relaxed);
        deallocate(ctx, offset);
    }
}

} // namespace baselines
