/// @file
/// PodAllocator adapter over the real cxlalloc implementation, so the
/// key-value store and benchmarks can treat it uniformly with baselines.

#pragma once

#include "baselines/pod_allocator.h"
#include "cxlalloc/allocator.h"

namespace baselines {

class CxlallocAdapter : public PodAllocator {
  public:
    /// @param recoverable  false selects the cxlalloc-nonrecoverable
    ///                     ablation label (the allocator itself must have
    ///                     been built with the matching Config).
    explicit CxlallocAdapter(cxlalloc::CxlAllocator* alloc)
        : alloc_(alloc)
    {
    }

    const char*
    name() const override
    {
        return alloc_->config().recoverable ? "cxlalloc"
                                            : "cxlalloc-nonrecoverable";
    }

    AllocTraits
    traits() const override
    {
        AllocTraits t;
        t.memory = "XP, CXL";
        t.cross_process = true;
        t.mmap_support = true;
        t.nonblocking_failure = true;
        t.recovery = alloc_->config().recoverable
                         ? AllocTraits::Recovery::NonBlocking
                         : AllocTraits::Recovery::None;
        t.strategy = alloc_->config().recoverable ? "App" : "-";
        return t;
    }

    void
    attach_thread(pod::ThreadContext& ctx) override
    {
        alloc_->attach_thread(ctx);
    }

    cxl::HeapOffset
    allocate(pod::ThreadContext& ctx, std::uint64_t size) override
    {
        return alloc_->allocate(ctx, size);
    }

    void
    deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset) override
    {
        alloc_->deallocate(ctx, offset);
    }

    std::uint64_t
    hwcc_bytes(cxl::MemSession&) override
    {
        // Only the metadata the layout places in the HWcc region — the
        // headline §3.2 result.
        return alloc_->layout().hwcc_bytes();
    }

    cxlalloc::CxlAllocator& impl() { return *alloc_; }

  private:
    cxlalloc::CxlAllocator* alloc_;
};

} // namespace baselines
