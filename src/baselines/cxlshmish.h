/// @file
/// cxlshmish: a CXL-SHM-like partial-failure-tolerant allocator [68].
///
/// Load-bearing properties reproduced (paper §2, §5.2.1, §6):
///  - lock-free allocation (per-class Treiber stacks) tolerating partial
///    failure without blocking;
///  - a 24 B inline header on EVERY allocation holding a reference count
///    (8 B of which needs HWcc) — scattered through the heap, so limited
///    HWcc cannot be supported without marking the whole heap coherent,
///    and small-allocation workloads (MC-15/MC-31) pay visible overhead;
///  - reference counting on *access*: the KV store bumps the count on
///    every read, creating contention on hot objects (the YCSB-A/D story);
///  - no allocation larger than 1 KiB, and no mmap: MC-12/MC-37 "crash".

#pragma once

#include <array>
#include <atomic>

#include "baselines/pod_allocator.h"
#include "cxlalloc/size_class.h"
#include "pod/pod.h"

namespace baselines {

class Cxlshmish : public PodAllocator {
  public:
    Cxlshmish(pod::Pod& pod, cxl::HeapOffset arena, std::uint64_t arena_size);

    const char* name() const override { return "cxl-shm-like"; }
    AllocTraits traits() const override;

    cxl::HeapOffset allocate(pod::ThreadContext& ctx,
                             std::uint64_t size) override;
    void deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset) override;

    /// Reference counting per access — the design choice that hurts under
    /// skewed (hot-key) workloads even when they are read-heavy.
    void on_access(pod::ThreadContext& ctx, cxl::HeapOffset offset) override;
    void after_access(pod::ThreadContext& ctx,
                      cxl::HeapOffset offset) override;

    std::uint64_t
    hwcc_bytes(cxl::MemSession&) override
    {
        // Refcount words are embedded in every allocation across the whole
        // heap: all committed memory must be coherent (or uncachable under
        // mCAS, which the paper deems an unfair comparison).
        return pod_.device().committed_bytes();
    }

    /// Allocations that returned 0 because the size exceeded 1 KiB.
    std::uint64_t unsupported_allocs() const { return unsupported_.load(); }

  private:
    /// Inline header preceding every block: refcount (HWcc), size class,
    /// next link for the free stack.
    static constexpr std::uint64_t kHeader = 24;
    static constexpr std::uint64_t kRefcountOff = 0; ///< 8 B, needs HWcc
    static constexpr std::uint64_t kClassOff = 8;
    static constexpr std::uint64_t kNextOff = 16;

    std::atomic<std::uint64_t>& word(cxl::HeapOffset off);

    pod::Pod& pod_;
    cxl::HeapOffset arena_;
    std::uint64_t arena_size_;
    std::atomic<std::uint64_t> bump_{0};
    /// Treiber stack heads per class, tagged with a 16-bit ABA counter in
    /// the top bits.
    std::array<std::atomic<std::uint64_t>, cxlalloc::kNumSmallClasses>
        stacks_{};
    std::atomic<std::uint64_t> unsupported_{0};
};

} // namespace baselines
