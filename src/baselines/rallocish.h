/// @file
/// rallocish: a Ralloc-like lock-free persistent-memory allocator [16].
///
/// Load-bearing properties reproduced (paper §5.2, §5.4, Fig. 7/9/12):
///  - lock-free slab allocation with *shared partial slabs*: any thread
///    allocates from the class's partial-slab list, so remote frees feed
///    thread-local caches cheaply at low thread counts but every block
///    pop/push is a CAS on shared slab metadata — the contention that
///    makes ralloc "fall off at higher thread counts" and "scale poorly"
///    under mCAS;
///  - metadata segregated from data (the only baseline for which limited
///    HWcc is even plausible), but NOT split local/global: the whole
///    metadata region must be coherent or uncachable — under mCAS, ralloc
///    "must read a size class from uncachable memory on every free";
///  - recovery by garbage collection: after a crash the allocator must
///    either run a blocking heap scan (ralloc-gc) or leak the dead
///    thread's blocks (ralloc-leak) — Fig. 7.
///
/// All synchronization goes through MemSession::cas64, so the same code
/// runs over HWcc CAS or NMP mCAS (Fig. 12's ralloc-hwcc / ralloc-mcas).

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "baselines/pod_allocator.h"
#include "cxlalloc/size_class.h"
#include "pod/pod.h"

namespace baselines {

class Rallocish : public PodAllocator {
  public:
    /// Metadata is placed at [meta, meta + meta_size(...)) — callers put
    /// this inside the device's sync region for mCAS operation — and data
    /// at [data, data + num_slabs * 64 KiB).
    Rallocish(pod::Pod& pod, cxl::HeapOffset meta, cxl::HeapOffset data,
              std::uint32_t num_slabs);

    /// Bytes of (HWcc) metadata for @p num_slabs slabs.
    static std::uint64_t meta_size(std::uint32_t num_slabs);

    const char* name() const override { return "ralloc-like"; }
    AllocTraits traits() const override;

    /// Resets this thread's volatile block cache. On a crashed slot this
    /// is exactly what LOSES the dead thread's cached blocks — the memory
    /// ralloc must either garbage collect (blocking) or leak (Fig. 7).
    void attach_thread(pod::ThreadContext& ctx) override;

    /// Clean exit: returns cached blocks to the shared slabs.
    void flush_thread_cache(pod::ThreadContext& ctx);

    /// Stop-the-world helper for GC: returns EVERY live thread's cached
    /// blocks to the shared slabs using @p mem's session. Callers must
    /// have quiesced all threads (the blocking the paper measures).
    void flush_all_caches(cxl::MemSession& mem);

    cxl::HeapOffset allocate(pod::ThreadContext& ctx,
                             std::uint64_t size) override;
    void deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset) override;

    std::uint64_t
    hwcc_bytes(cxl::MemSession&) override
    {
        // Ralloc's metadata is separable but monolithic: all of it needs
        // coherence (paper: "it can naively support limited HWcc by
        // placing only its metadata in the HWcc region").
        return meta_size(num_slabs_);
    }

    /// Blocking GC recovery (ralloc-gc in Fig. 7): rebuilds every slab's
    /// free list from the application's live-block predicate. The caller
    /// must quiesce the heap — that blocking is the measured cost.
    /// Returns bytes reclaimed.
    std::uint64_t
    recover_gc(cxl::MemSession& mem,
               const std::function<bool(cxl::HeapOffset)>& is_live);

    /// Leak accounting for ralloc-leak: bytes unreachable (not free, not
    /// live) if recovery skips GC.
    std::uint64_t
    leaked_bytes(cxl::MemSession& mem,
                 const std::function<bool(cxl::HeapOffset)>& is_live);

    std::uint32_t slabs_used(cxl::MemSession& mem);

  private:
    static constexpr std::uint64_t kSlabSize = 64 << 10;
    /// Per-slab metadata stride: class u32, next-partial u32, free-list
    /// head u64 (tagged), on-partial u64 (flag word, CAS 0 -> 1).
    static constexpr std::uint64_t kDescStride = 24;
    static constexpr std::uint64_t kClassOff = 0;
    static constexpr std::uint64_t kNextOff = 4;
    static constexpr std::uint64_t kFreeHeadOff = 8;
    static constexpr std::uint64_t kOnPartialOff = 16;

    /// Tagged word helpers: [ tag:16 | value:48 ].
    static std::uint64_t pack(std::uint64_t value, std::uint64_t tag);
    static std::uint64_t value_of(std::uint64_t word);
    static std::uint64_t tag_of(std::uint64_t word);

    cxl::HeapOffset desc(std::uint32_t slab) const;
    cxl::HeapOffset partial_head(std::uint32_t cls) const;
    cxl::HeapOffset len_word() const;
    cxl::HeapOffset slab_data(std::uint32_t slab) const;

    /// Builds a fresh slab's intrusive block chain; returns false when the
    /// slab capacity is exhausted.
    bool extend(pod::ThreadContext& ctx, std::uint32_t cls);
    void push_partial(cxl::MemSession& mem, std::uint32_t slab);
    void rebuild_slab_free_list(cxl::MemSession& mem, std::uint32_t slab,
                                const std::vector<bool>& block_free);

    /// Pops up to kCacheBatch blocks of @p cls into the thread cache.
    bool refill_cache(pod::ThreadContext& ctx, std::uint32_t cls);
    /// Pushes one block back onto its slab's shared free list.
    void push_block(cxl::MemSession& mem, cxl::HeapOffset block);

    static constexpr std::uint32_t kCacheBatch = 16;
    static constexpr std::uint32_t kAllClasses = 33; // small + super + span

    struct PerThread {
        std::array<std::vector<cxl::HeapOffset>, kAllClasses> cache;
    };

    pod::Pod& pod_;
    cxl::HeapOffset meta_;
    cxl::HeapOffset data_;
    std::uint32_t num_slabs_;
    /// Volatile per-thread block caches (ralloc's thread-local free lists).
    std::array<PerThread, cxl::kMaxThreads + 1> threads_{};
};

} // namespace baselines
