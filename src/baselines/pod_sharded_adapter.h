/// @file
/// PodAllocator adapter over the topology-aware sharded cxlalloc heap, so
/// the key-value store and benchmarks can drive a multi-host pod through
/// the same interface as the single-device allocators.

#pragma once

#include "baselines/pod_allocator.h"
#include "cxlalloc/pod_shard.h"

namespace baselines {

class PodShardedAdapter : public PodAllocator {
  public:
    explicit PodShardedAdapter(cxlalloc::PodShardedAllocator* alloc)
        : alloc_(alloc)
    {
    }

    const char*
    name() const override
    {
        return "cxlalloc-pod";
    }

    AllocTraits
    traits() const override
    {
        AllocTraits t;
        t.memory = "XP, CXL";
        t.cross_process = true;
        t.mmap_support = true;
        t.nonblocking_failure = true;
        t.recovery = AllocTraits::Recovery::NonBlocking;
        t.strategy = "App";
        return t;
    }

    void
    attach_thread(pod::ThreadContext& ctx) override
    {
        alloc_->attach_thread(ctx);
    }

    cxl::HeapOffset
    allocate(pod::ThreadContext& ctx, std::uint64_t size) override
    {
        return alloc_->allocate(ctx, size);
    }

    void
    deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset) override
    {
        alloc_->deallocate(ctx, offset);
    }

    std::uint64_t
    hwcc_bytes(cxl::MemSession&) override
    {
        // Sum over shards: every window contributes its own HWcc prefix.
        return alloc_->hwcc_bytes();
    }

    cxlalloc::PodShardedAllocator& impl() { return *alloc_; }

  private:
    cxlalloc::PodShardedAllocator* alloc_;
};

} // namespace baselines
