#include "baselines/boostish.h"

#include "common/cacheline.h"

namespace baselines {

Boostish::Boostish(pod::Pod& pod, cxl::HeapOffset arena,
                   std::uint64_t arena_size)
    : pod_(pod), arena_(arena), arena_size_(arena_size)
{
    free_.insert(arena, arena_size);
}

AllocTraits
Boostish::traits() const
{
    AllocTraits t;
    t.memory = "XP";
    t.cross_process = true;
    t.mmap_support = false;
    t.nonblocking_failure = false; // mutex holder's crash blocks everyone
    t.recovery = AllocTraits::Recovery::None;
    return t;
}

std::uint64_t*
Boostish::size_header(cxl::HeapOffset off)
{
    return reinterpret_cast<std::uint64_t*>(pod_.device().raw(off));
}

cxl::HeapOffset
Boostish::allocate(pod::ThreadContext&, std::uint64_t size)
{
    std::uint64_t need = cxlcommon::align_up(size + 8, 8);
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t start = 0;
    if (!free_.take(need, &start)) {
        return 0;
    }
    *size_header(start) = need;
    pod_.device().note_committed(start, need);
    return start + 8;
}

void
Boostish::deallocate(pod::ThreadContext&, cxl::HeapOffset offset)
{
    cxl::HeapOffset start = offset - 8;
    std::lock_guard<std::mutex> lock(mu_);
    free_.insert(start, *size_header(start));
}

} // namespace baselines
