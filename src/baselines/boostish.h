/// @file
/// boostish: a Boost.Interprocess-like cross-process allocator [1].
///
/// Load-bearing properties reproduced (paper Table 1 and §5.2.1):
///  - offset-based pointers over a fixed-size shared segment (XP = yes,
///    mmap = no: the heap cannot grow and there are no huge mappings);
///  - ONE global mutex around a best-fit free list: correct, simple, and
///    fundamentally unscalable — "Boost and Lightning are fundamentally
///    unscalable, as they both acquire a global mutex";
///  - a crash inside the critical section blocks every other thread
///    (Fail = B), and there is no recovery.

#pragma once

#include <mutex>

#include "baselines/pod_allocator.h"
#include "cxlalloc/interval_set.h"
#include "pod/pod.h"

namespace baselines {

class Boostish : public PodAllocator {
  public:
    Boostish(pod::Pod& pod, cxl::HeapOffset arena, std::uint64_t arena_size);

    const char* name() const override { return "boost-like"; }
    AllocTraits traits() const override;

    cxl::HeapOffset allocate(pod::ThreadContext& ctx,
                             std::uint64_t size) override;
    void deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset) override;

    std::uint64_t
    hwcc_bytes(cxl::MemSession&) override
    {
        // The segment's mutex word and free-list metadata all need
        // coherence; boost interleaves metadata with data, so the whole
        // segment must be HWcc.
        return pod_.device().committed_bytes();
    }

  private:
    std::uint64_t* size_header(cxl::HeapOffset off);

    pod::Pod& pod_;
    cxl::HeapOffset arena_;
    std::uint64_t arena_size_;
    std::mutex mu_; ///< the global segment mutex
    cxlalloc::IntervalSet free_;
};

} // namespace baselines
