#include "baselines/pod_allocator.h"

// Interface-only translation unit (anchors nothing today; kept so the
// library has a stable home for future shared baseline helpers).
