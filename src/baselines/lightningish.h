/// @file
/// lightningish: the allocator extracted from a Lightning-like
/// shared-memory object store [72].
///
/// Load-bearing properties reproduced (paper §5.2.1):
///  - a global mutex (unscalable, like boostish);
///  - a large *per-allocation tracking array* used for crash-time garbage
///    collection of dead clients — "Lightning's PSS usage ... uses a large
///    array to track each individual allocation ... and requires an order
///    of magnitude more memory";
///  - blocking failure and blocking GC recovery (Table 1: Fail=B, Rec.=B,
///    Str.=GC).

#pragma once

#include <mutex>
#include <vector>

#include "baselines/pod_allocator.h"
#include "cxlalloc/interval_set.h"
#include "pod/pod.h"

namespace baselines {

class Lightningish : public PodAllocator {
  public:
    Lightningish(pod::Pod& pod, cxl::HeapOffset arena,
                 std::uint64_t arena_size);

    const char* name() const override { return "lightning-like"; }
    AllocTraits traits() const override;

    cxl::HeapOffset allocate(pod::ThreadContext& ctx,
                             std::uint64_t size) override;
    void deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset) override;

    std::uint64_t
    hwcc_bytes(cxl::MemSession&) override
    {
        return pod_.device().committed_bytes(); // metadata interleaved: whole segment coherent
    }

    std::uint64_t metadata_overhead_bytes() override;

    /// Blocking GC recovery: reclaims every allocation owned by @p tid.
    void recover_gc(cxl::ThreadId tid);

  private:
    /// Tracking entry for one live allocation. Deliberately heavyweight
    /// (object-store bookkeeping: id, owner, state, timestamps...) — this
    /// is what inflates Lightning's memory footprint in Fig. 8.
    struct Entry {
        cxl::HeapOffset offset = 0;
        std::uint64_t size = 0;
        cxl::ThreadId owner = cxl::kNoThread;
        bool live = false;
        std::uint8_t padding[40] = {}; ///< object-store header fields
    };

    pod::Pod& pod_;
    cxl::HeapOffset arena_;
    std::uint64_t arena_size_;
    std::mutex mu_;
    cxlalloc::IntervalSet free_;
    std::vector<Entry> entries_;
    std::vector<std::uint32_t> free_entries_;
};

} // namespace baselines
