#include "baselines/mimic.h"

#include "common/assert.h"
#include "common/cacheline.h"

#include <algorithm>

namespace baselines {

using cxlalloc::kNumLargeClasses;
using cxlalloc::kNumSmallClasses;

namespace {

/// Sizes above this go to the mutexed huge fallback; below it, pages.
constexpr std::uint64_t kPageMax = 32 << 10;

} // namespace

Mimic::Mimic(pod::Pod& pod, cxl::HeapOffset arena, std::uint64_t arena_size)
    : pod_(pod), arena_(arena), arena_size_(arena_size)
{
    // First half: 64 KiB pages. Second half: huge fallback.
    page_count_ = arena_size / 2 / kPage;
    pages_ = std::make_unique<Page[]>(page_count_);
    huge_free_.emplace_back(arena + arena_size / 2, arena_size / 2);
}

AllocTraits
Mimic::traits() const
{
    AllocTraits t;
    t.memory = "M";
    t.cross_process = false;
    t.mmap_support = true;
    t.nonblocking_failure = true;
    t.recovery = AllocTraits::Recovery::None;
    return t;
}

std::uint64_t
Mimic::class_size(std::uint32_t cls) const
{
    if (cls < kNumSmallClasses) {
        return cxlalloc::small_class_size(cls);
    }
    return cxlalloc::large_class_size(cls - kNumSmallClasses);
}

std::uint32_t
Mimic::class_for(std::uint64_t size) const
{
    if (size <= cxlalloc::kSmallMax) {
        return cxlalloc::small_class_for(size);
    }
    return kNumSmallClasses + cxlalloc::large_class_for(size);
}

std::uint64_t*
Mimic::word_at(cxl::HeapOffset off)
{
    return reinterpret_cast<std::uint64_t*>(pod_.device().raw(off));
}

bool
Mimic::take_from_page(Page& page, cxl::HeapOffset* out)
{
    if (page.local_free == 0) {
        // Batch-collect remote frees (mimalloc's "free list sharding in
        // action": one exchange amortizes all remote frees since the last
        // collection).
        std::uint64_t head =
            page.remote_free.exchange(0, std::memory_order_acq_rel);
        std::uint64_t collected = 0;
        for (std::uint64_t b = head; b != 0; b = *word_at(b)) {
            collected++;
        }
        page.local_free = head;
        page.used -= collected;
    }
    if (page.local_free == 0) {
        return false;
    }
    *out = page.local_free;
    page.local_free = *word_at(page.local_free);
    page.used++;
    return true;
}

bool
Mimic::fresh_page(pod::ThreadContext& ctx, std::uint32_t cls,
                  std::uint32_t* index_out)
{
    std::uint32_t index;
    {
        std::lock_guard<std::mutex> lock(free_pages_mu_);
        if (!free_pages_.empty()) {
            index = free_pages_.back();
            free_pages_.pop_back();
        } else {
            std::uint64_t at =
                bump_.fetch_add(kPage, std::memory_order_relaxed);
            if (at + kPage > arena_size_ / 2) {
                return false; // page space exhausted
            }
            index = static_cast<std::uint32_t>(at / kPage);
        }
    }
    Page& page = pages_[index];
    page.owner.store(ctx.tid(), std::memory_order_relaxed);
    page.cls = cls;
    page.used = 0;
    std::uint64_t bsize = class_size(cls);
    std::uint64_t blocks = kPage / bsize;
    cxl::HeapOffset base = arena_ + static_cast<std::uint64_t>(index) * kPage;
    pod_.device().note_committed(base, kPage);
    // Thread every block onto the local free list.
    for (std::uint64_t b = 0; b < blocks; b++) {
        cxl::HeapOffset block = base + b * bsize;
        *word_at(block) = (b + 1 < blocks) ? block + bsize : 0;
    }
    page.local_free = base;
    page.remote_free.store(0, std::memory_order_relaxed);
    *index_out = index;
    return true;
}

void
Mimic::recycle_page(pod::ThreadContext& ctx, std::uint32_t cls,
                    std::uint32_t index)
{
    ThreadHeap& heap = heaps_[ctx.tid()];
    auto& list = heap.pages[cls];
    auto it = std::find(list.begin(), list.end(), index);
    CXL_ASSERT(it != list.end(), "recycling a page we do not own");
    list.erase(it);
    pages_[index].owner.store(cxl::kNoThread, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(free_pages_mu_);
    free_pages_.push_back(index);
}

cxl::HeapOffset
Mimic::allocate(pod::ThreadContext& ctx, std::uint64_t size)
{
    if (size > kPageMax) {
        // Mutexed fallback for big objects (rare in the paper's
        // workloads; mimalloc delegates these to the OS).
        std::lock_guard<std::mutex> lock(huge_mu_);
        std::uint64_t need = cxlcommon::align_up(size + 16, 4096);
        for (auto& [start, len] : huge_free_) {
            if (len >= need) {
                cxl::HeapOffset at = start;
                start += need;
                len -= need;
                *word_at(at) = need;
                pod_.device().note_committed(at, need);
                return at + 16;
            }
        }
        return 0;
    }
    std::uint32_t cls = class_for(size);
    ThreadHeap& heap = heaps_[ctx.tid()];
    auto& list = heap.pages[cls];
    cxl::HeapOffset out = 0;
    // The back of the queue is the current page; fall back to older pages
    // (collecting their remote frees) before asking for a fresh one.
    for (std::size_t i = list.size(); i-- > 0;) {
        if (take_from_page(pages_[list[i]], &out)) {
            if (i + 1 != list.size()) {
                std::swap(list[i], list.back());
            }
            return out;
        }
    }
    std::uint32_t fresh = 0;
    if (!fresh_page(ctx, cls, &fresh)) {
        return 0;
    }
    list.push_back(fresh);
    bool ok = take_from_page(pages_[fresh], &out);
    CXL_ASSERT(ok, "fresh page had no free block");
    return out;
}

void
Mimic::deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset)
{
    if (offset >= arena_ + arena_size_ / 2) {
        std::lock_guard<std::mutex> lock(huge_mu_);
        cxl::HeapOffset start = offset - 16;
        huge_free_.emplace_back(start, *word_at(start));
        return;
    }
    auto index = static_cast<std::uint32_t>((offset - arena_) / kPage);
    Page& page = pages_[index];
    if (page.owner.load(std::memory_order_relaxed) == ctx.tid()) {
        *word_at(offset) = page.local_free;
        page.local_free = offset;
        page.used--;
        if (page.used == 0 &&
            heaps_[ctx.tid()].pages[page.cls].size() > 1) {
            recycle_page(ctx, page.cls, index);
        }
        return;
    }
    // Remote free: lock-free push onto the page's remote list.
    std::uint64_t head = page.remote_free.load(std::memory_order_acquire);
    do {
        *word_at(offset) = head;
    } while (!page.remote_free.compare_exchange_weak(
        head, offset, std::memory_order_acq_rel, std::memory_order_acquire));
}

std::uint64_t
Mimic::metadata_overhead_bytes()
{
    return page_count_ * sizeof(Page);
}

} // namespace baselines
