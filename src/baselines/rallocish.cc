#include "baselines/rallocish.h"

#include "common/assert.h"

namespace baselines {

using cxlalloc::kNumSmallClasses;
using cxlalloc::small_class_for;
using cxlalloc::small_class_size;

namespace {

/// rallocish serves 8 B - 512 KiB: small classes share 64 KiB slabs,
/// superblock classes (2 KiB - 32 KiB) hold several blocks per slab, and
/// span classes (64 KiB - 512 KiB) take whole multi-slab spans.
constexpr std::uint64_t kMaxBlock = 512 << 10;

std::uint64_t
class_size_of(std::uint32_t cls)
{
    if (cls < kNumSmallClasses) {
        return small_class_size(cls);
    }
    return 2048ULL << (cls - kNumSmallClasses); // 2 KiB ... 512 KiB
}

std::uint32_t
class_of(std::uint64_t size)
{
    if (size <= cxlalloc::kSmallMax) {
        return small_class_for(size);
    }
    std::uint32_t cls = kNumSmallClasses;
    std::uint64_t block = 2048;
    while (block < size) {
        block <<= 1;
        cls++;
    }
    return cls;
}

constexpr std::uint32_t kNumClasses = kNumSmallClasses + 9; // == kAllClasses

} // namespace

Rallocish::Rallocish(pod::Pod& pod, cxl::HeapOffset meta,
                     cxl::HeapOffset data, std::uint32_t num_slabs)
    : pod_(pod), meta_(meta), data_(data), num_slabs_(num_slabs)
{
    static_assert(kNumClasses == kAllClasses);
}

std::uint64_t
Rallocish::meta_size(std::uint32_t num_slabs)
{
    return 8 /*len*/ + kNumClasses * 8 /*partial heads*/ +
           static_cast<std::uint64_t>(num_slabs) * kDescStride;
}

AllocTraits
Rallocish::traits() const
{
    AllocTraits t;
    t.memory = "PM";
    t.cross_process = false; // ralloc assumes a single process at a time
    t.mmap_support = false;
    t.nonblocking_failure = true; // lock-free operations
    t.recovery = AllocTraits::Recovery::Blocking;
    t.strategy = "App"; // GC driven by application-provided roots
    t.max_alloc = kMaxBlock;
    return t;
}

void
Rallocish::attach_thread(pod::ThreadContext& ctx)
{
    // A fresh (or adopted-after-crash) slot starts with an empty cache;
    // whatever the previous occupant cached is unreachable until GC.
    for (auto& bucket : threads_[ctx.tid()].cache) {
        bucket.clear();
    }
}

void
Rallocish::flush_thread_cache(pod::ThreadContext& ctx)
{
    PerThread& t = threads_[ctx.tid()];
    for (auto& bucket : t.cache) {
        for (cxl::HeapOffset block : bucket) {
            push_block(ctx.mem(), block);
        }
        bucket.clear();
    }
}

void
Rallocish::flush_all_caches(cxl::MemSession& mem)
{
    for (PerThread& t : threads_) {
        for (auto& bucket : t.cache) {
            for (cxl::HeapOffset block : bucket) {
                push_block(mem, block);
            }
            bucket.clear();
        }
    }
}

std::uint64_t
Rallocish::pack(std::uint64_t value, std::uint64_t tag)
{
    return ((tag & 0xffff) << 48) | (value & ((1ULL << 48) - 1));
}

std::uint64_t
Rallocish::value_of(std::uint64_t word)
{
    return word & ((1ULL << 48) - 1);
}

std::uint64_t
Rallocish::tag_of(std::uint64_t word)
{
    return word >> 48;
}

cxl::HeapOffset
Rallocish::len_word() const
{
    return meta_;
}

cxl::HeapOffset
Rallocish::partial_head(std::uint32_t cls) const
{
    return meta_ + 8 + static_cast<cxl::HeapOffset>(cls) * 8;
}

cxl::HeapOffset
Rallocish::desc(std::uint32_t slab) const
{
    return meta_ + 8 + kNumClasses * 8 +
           static_cast<cxl::HeapOffset>(slab) * kDescStride;
}

cxl::HeapOffset
Rallocish::slab_data(std::uint32_t slab) const
{
    return data_ + static_cast<cxl::HeapOffset>(slab) * kSlabSize;
}

bool
Rallocish::extend(pod::ThreadContext& ctx, std::uint32_t cls)
{
    cxl::MemSession& mem = ctx.mem();
    std::uint64_t bsize = class_size_of(cls);
    std::uint64_t span = bsize <= kSlabSize ? 1 : bsize / kSlabSize;
    std::uint64_t len = mem.atomic_load64(len_word());
    while (true) {
        if (len + span > num_slabs_) {
            return false;
        }
        if (mem.cas64(len_word(), len, len + span)) {
            break;
        }
    }
    auto slab = static_cast<std::uint32_t>(len);
    std::uint64_t blocks = span == 1 ? kSlabSize / bsize : 1;
    mem.store<std::uint32_t>(desc(slab) + kClassOff, cls + 1);
    // Chain every block through its first word.
    cxl::HeapOffset base = slab_data(slab);
    for (std::uint64_t b = 0; b < blocks; b++) {
        cxl::HeapOffset block = base + b * bsize;
        std::uint64_t next = (b + 1 < blocks) ? block + bsize : 0;
        mem.store<std::uint64_t>(block, next);
    }
    mem.atomic_store64(desc(slab) + kFreeHeadOff, pack(base, 0));
    pod_.device().note_committed(base, span * kSlabSize);
    // Publish the new slab on its class's partial list.
    mem.atomic_store64(desc(slab) + kOnPartialOff, 1);
    std::uint64_t head = mem.atomic_load64(partial_head(cls));
    while (true) {
        mem.store<std::uint32_t>(desc(slab) + kNextOff,
                                 static_cast<std::uint32_t>(value_of(head)));
        if (mem.cas64(partial_head(cls), head,
                      pack(slab + 1, tag_of(head) + 1))) {
            return true;
        }
    }
}

void
Rallocish::push_partial(cxl::MemSession& mem, std::uint32_t slab)
{
    std::uint32_t cls = mem.load<std::uint32_t>(desc(slab) + kClassOff) - 1;
    std::uint64_t head = mem.atomic_load64(partial_head(cls));
    while (true) {
        mem.store<std::uint32_t>(desc(slab) + kNextOff,
                                 static_cast<std::uint32_t>(value_of(head)));
        if (mem.cas64(partial_head(cls), head,
                      pack(slab + 1, tag_of(head) + 1))) {
            return;
        }
    }
}

bool
Rallocish::refill_cache(pod::ThreadContext& ctx, std::uint32_t cls)
{
    cxl::MemSession& mem = ctx.mem();
    auto& bucket = threads_[ctx.tid()].cache[cls];
    while (bucket.empty()) {
        std::uint64_t head = mem.atomic_load64(partial_head(cls));
        std::uint64_t sraw = value_of(head);
        if (sraw == 0) {
            if (!extend(ctx, cls)) {
                return false;
            }
            continue;
        }
        auto slab = static_cast<std::uint32_t>(sraw - 1);
        // Pop a batch from the SHARED slab free list (ralloc's design:
        // partial slabs shared between threads feeding per-thread caches).
        while (bucket.size() < kCacheBatch) {
            std::uint64_t fh = mem.atomic_load64(desc(slab) + kFreeHeadOff);
            std::uint64_t block = value_of(fh);
            if (block == 0) {
                break;
            }
            std::uint64_t next_block = mem.load<std::uint64_t>(block);
            if (mem.cas64(desc(slab) + kFreeHeadOff, fh,
                          pack(next_block, tag_of(fh) + 1))) {
                bucket.push_back(block);
            }
        }
        if (bucket.empty()) {
            // Slab exhausted: unlink it from the partial list and retry.
            std::uint32_t next =
                mem.load<std::uint32_t>(desc(slab) + kNextOff);
            if (mem.cas64(partial_head(cls), head,
                          pack(next, tag_of(head) + 1))) {
                mem.atomic_store64(desc(slab) + kOnPartialOff, 0);
                // A free may have landed between our last pop and the
                // unlink; re-publish the slab if it has blocks again.
                if (value_of(mem.atomic_load64(desc(slab) + kFreeHeadOff)) !=
                    0) {
                    std::uint64_t flag = 0;
                    if (mem.cas64(desc(slab) + kOnPartialOff, flag, 1)) {
                        push_partial(mem, slab);
                    }
                }
            }
        }
    }
    return true;
}

cxl::HeapOffset
Rallocish::allocate(pod::ThreadContext& ctx, std::uint64_t size)
{
    if (size > kMaxBlock) {
        return 0;
    }
    std::uint32_t cls = class_of(size);
    auto& bucket = threads_[ctx.tid()].cache[cls];
    if (bucket.empty() && !refill_cache(ctx, cls)) {
        return 0;
    }
    cxl::HeapOffset block = bucket.back();
    bucket.pop_back();
    // Real ralloc's fast path reads the block's free-list link from the
    // heap; route that access through the session so memory-mode cost
    // accounting sees the fast path too.
    (void)ctx.mem().load<std::uint64_t>(block);
    return block;
}

void
Rallocish::push_block(cxl::MemSession& mem, cxl::HeapOffset block)
{
    auto slab = static_cast<std::uint32_t>((block - data_) / kSlabSize);
    // A span-interior offset belongs to the span's first slab; spans hand
    // out only their base, so `block` is always span-aligned already.
    std::uint64_t fh = mem.atomic_load64(desc(slab) + kFreeHeadOff);
    while (true) {
        mem.store<std::uint64_t>(block, value_of(fh));
        if (mem.cas64(desc(slab) + kFreeHeadOff, fh,
                      pack(block, tag_of(fh) + 1))) {
            break;
        }
    }
    if (value_of(fh) == 0) {
        // Slab regained a free block: make sure it is discoverable.
        std::uint64_t flag = 0;
        if (mem.cas64(desc(slab) + kOnPartialOff, flag, 1)) {
            push_partial(mem, slab);
        }
    }
}

void
Rallocish::deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset)
{
    cxl::MemSession& mem = ctx.mem();
    auto slab = static_cast<std::uint32_t>((offset - data_) / kSlabSize);
    CXL_ASSERT(slab < num_slabs_, "rallocish: free outside arena");
    // "ralloc must read a size class from uncachable memory on every
    // free" — this metadata load is the per-op mCAS-mode tax.
    std::uint32_t cls = mem.load<std::uint32_t>(desc(slab) + kClassOff) - 1;
    auto& bucket = threads_[ctx.tid()].cache[cls];
    bucket.push_back(offset);
    if (bucket.size() > 2 * kCacheBatch) {
        // Spill half the cache back to the shared slabs.
        for (std::uint32_t i = 0; i < kCacheBatch; i++) {
            push_block(mem, bucket.back());
            bucket.pop_back();
        }
    }
}

std::uint32_t
Rallocish::slabs_used(cxl::MemSession& mem)
{
    return static_cast<std::uint32_t>(mem.atomic_load64(len_word()));
}

std::uint64_t
Rallocish::recover_gc(cxl::MemSession& mem,
                      const std::function<bool(cxl::HeapOffset)>& is_live)
{
    // Offline mark-and-rebuild, as PM allocators do during their blocking
    // recovery window: every block that the application does not claim is
    // swept back onto its slab's free list. NOTE: quiescence required —
    // live threads' caches must have been flushed or are forfeited.
    std::uint64_t reclaimed = 0;
    std::uint32_t len = slabs_used(mem);
    for (std::uint32_t slab = 0; slab < len; slab++) {
        std::uint32_t biased = mem.load<std::uint32_t>(desc(slab) + kClassOff);
        if (biased == 0) {
            continue;
        }
        std::uint64_t bsize = class_size_of(biased - 1);
        std::uint64_t blocks = bsize <= kSlabSize ? kSlabSize / bsize : 1;
        std::vector<bool> free_blocks(blocks, false);
        std::uint64_t swept = 0;
        for (std::uint64_t b = 0; b < blocks; b++) {
            cxl::HeapOffset block = slab_data(slab) + b * bsize;
            if (!is_live(block)) {
                free_blocks[b] = true;
                swept += bsize;
            }
        }
        rebuild_slab_free_list(mem, slab, free_blocks);
        reclaimed += swept;
    }
    return reclaimed;
}

void
Rallocish::rebuild_slab_free_list(cxl::MemSession& mem, std::uint32_t slab,
                                  const std::vector<bool>& block_free)
{
    std::uint32_t biased = mem.load<std::uint32_t>(desc(slab) + kClassOff);
    std::uint64_t bsize = class_size_of(biased - 1);
    std::uint64_t head = 0;
    bool any = false;
    for (std::size_t b = block_free.size(); b-- > 0;) {
        if (!block_free[b]) {
            continue;
        }
        cxl::HeapOffset block = slab_data(slab) + b * bsize;
        mem.store<std::uint64_t>(block, head);
        head = block;
        any = true;
    }
    std::uint64_t old = mem.atomic_load64(desc(slab) + kFreeHeadOff);
    mem.atomic_store64(desc(slab) + kFreeHeadOff, pack(head, tag_of(old) + 1));
    if (any && mem.atomic_load64(desc(slab) + kOnPartialOff) == 0) {
        mem.atomic_store64(desc(slab) + kOnPartialOff, 1);
        push_partial(mem, slab);
    }
}

std::uint64_t
Rallocish::leaked_bytes(cxl::MemSession& mem,
                        const std::function<bool(cxl::HeapOffset)>& is_live)
{
    // What ralloc-leak abandons: blocks that are neither on a shared free
    // list, nor in any LIVE thread's cache, nor claimed by the
    // application. Callers account live caches via is_live or flush them
    // first; a crashed thread's cache is gone, which is the leak.
    std::uint64_t leaked = 0;
    std::uint32_t len = slabs_used(mem);
    for (std::uint32_t slab = 0; slab < len; slab++) {
        std::uint32_t biased = mem.load<std::uint32_t>(desc(slab) + kClassOff);
        if (biased == 0) {
            continue;
        }
        std::uint64_t bsize = class_size_of(biased - 1);
        std::uint64_t blocks = bsize <= kSlabSize ? kSlabSize / bsize : 1;
        std::vector<bool> on_free(blocks, false);
        std::uint64_t cursor =
            value_of(mem.atomic_load64(desc(slab) + kFreeHeadOff));
        std::uint64_t steps = 0;
        while (cursor != 0 && steps++ <= blocks) {
            on_free[(cursor - slab_data(slab)) / bsize] = true;
            cursor = mem.load<std::uint64_t>(cursor);
        }
        // Blocks sitting in live threads' caches are not leaked.
        std::vector<bool> cached(blocks, false);
        for (const PerThread& t : threads_) {
            for (const auto& bucket : t.cache) {
                for (cxl::HeapOffset block : bucket) {
                    if (block >= slab_data(slab) &&
                        block < slab_data(slab) + blocks * bsize) {
                        cached[(block - slab_data(slab)) / bsize] = true;
                    }
                }
            }
        }
        for (std::uint64_t b = 0; b < blocks; b++) {
            cxl::HeapOffset block = slab_data(slab) + b * bsize;
            if (!on_free[b] && !cached[b] && !is_live(block)) {
                leaked += bsize;
            }
        }
    }
    return leaked;
}

} // namespace baselines
