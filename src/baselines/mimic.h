/// @file
/// mimic: a mimalloc-like single-process allocator [43], the throughput
/// ceiling in the paper's evaluation.
///
/// Load-bearing properties reproduced:
///  - free-list *sharding*: one intrusive free list per page (slab), so
///    the hot path is a two-instruction pop with no searches;
///  - separate local and remote free lists per page: local frees are
///    unsynchronized, remote frees CAS onto an atomic list that the owner
///    collects in batch;
///  - zero cross-process support: metadata lives in host memory and
///    pointers are process-local (Table 1: Mem=M, XP=x).

#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/pod_allocator.h"
#include "cxlalloc/size_class.h"
#include "pod/pod.h"

namespace baselines {

class Mimic : public PodAllocator {
  public:
    /// Manages [arena, arena + arena_size) of @p pod's device as its heap.
    Mimic(pod::Pod& pod, cxl::HeapOffset arena, std::uint64_t arena_size);

    const char* name() const override { return "mimalloc-like"; }
    AllocTraits traits() const override;

    cxl::HeapOffset allocate(pod::ThreadContext& ctx,
                             std::uint64_t size) override;
    void deallocate(pod::ThreadContext& ctx, cxl::HeapOffset offset) override;

    std::uint64_t hwcc_bytes(cxl::MemSession&) override { return 0; }
    std::uint64_t metadata_overhead_bytes() override;

  private:
    static constexpr std::uint64_t kPage = 64 << 10; // mimalloc page size

    /// Host-side page metadata (mimalloc keeps this in segment headers).
    struct Page {
        std::atomic<cxl::ThreadId> owner{cxl::kNoThread};
        std::uint32_t cls = 0;
        std::uint32_t used = 0;
        /// Intrusive local free list head (device offset; 0 = empty).
        std::uint64_t local_free = 0;
        /// Intrusive remote free list head (CAS target for remote frees).
        std::atomic<std::uint64_t> remote_free{0};
        std::uint32_t remote_count = 0; ///< frees collected so far
    };

    struct ThreadHeap {
        /// Pages owned per class; the back is the current page.
        std::array<std::vector<std::uint32_t>,
                   cxlalloc::kNumSmallClasses + cxlalloc::kNumLargeClasses>
            pages;
    };

    std::uint64_t class_size(std::uint32_t cls) const;
    std::uint32_t class_for(std::uint64_t size) const;

    std::uint64_t* word_at(cxl::HeapOffset off);
    bool take_from_page(Page& page, cxl::HeapOffset* out);
    bool fresh_page(pod::ThreadContext& ctx, std::uint32_t cls,
                    std::uint32_t* index_out);
    void recycle_page(pod::ThreadContext& ctx, std::uint32_t cls,
                      std::uint32_t index);

    pod::Pod& pod_;
    cxl::HeapOffset arena_;
    std::uint64_t arena_size_;
    std::atomic<std::uint64_t> bump_{0};
    /// One entry per page; preallocated so no growth races. (Raw array:
    /// Page holds atomics and cannot live in a std::vector.)
    std::unique_ptr<Page[]> pages_;
    std::uint64_t page_count_ = 0;
    std::array<ThreadHeap, cxl::kMaxThreads + 1> heaps_{};
    /// Fully-freed pages available for reuse by any thread.
    std::mutex free_pages_mu_;
    std::vector<std::uint32_t> free_pages_;
    /// Huge allocations (> large max) fall back to a mutexed bump list.
    std::mutex huge_mu_;
    std::vector<std::pair<cxl::HeapOffset, std::uint64_t>> huge_free_;
};

} // namespace baselines
