/// @file
/// Common interface over all evaluated allocators, plus the property matrix
/// of paper Table 1.
///
/// Each baseline reproduces the *load-bearing design property* of a system
/// the paper compares against (see DESIGN.md §4): mimic the unconstrained
/// throughput ceiling (mimalloc), boostish the global-mutex cross-process
/// allocator (Boost.Interprocess), lightningish the mutex + per-allocation
/// tracking-array store allocator (Lightning), cxlshmish the lock-free
/// refcount-header allocator with a 1 KiB cap (CXL-SHM), and rallocish the
/// lock-free slab allocator with shared partial slabs and GC recovery
/// (Ralloc).

#pragma once

#include <cstdint>
#include <string>

#include "cxl/mem_ops.h"
#include "cxl/types.h"
#include "pod/thread_context.h"

namespace baselines {

/// Table 1 property matrix row.
struct AllocTraits {
    /// Memory kinds the design targets ("M", "XP", "CXL", "PM", ...).
    std::string memory;
    /// Supports cross-process allocation (pointer alternatives).
    bool cross_process = false;
    /// Can use mmap to extend the heap or back large allocations.
    bool mmap_support = false;
    /// Live threads do not block when another thread crashes.
    bool nonblocking_failure = false;

    enum class Recovery { None, Blocking, NonBlocking };
    Recovery recovery = Recovery::None;

    /// Recovery strategy ("GC", "App", or "-").
    std::string strategy = "-";

    /// The design requires touching a per-object reference count on every
    /// access (CXL-SHM); the key-value store honors this via on_access().
    bool refcount_on_access = false;

    /// Largest supported allocation (CXL-SHM caps at 1 KiB; the paper
    /// reports it crashing on MC-12/MC-37).
    std::uint64_t max_alloc = ~std::uint64_t{0};
};

/// Uniform allocator interface used by the key-value store, workloads and
/// benchmarks.
class PodAllocator {
  public:
    virtual ~PodAllocator() = default;

    virtual const char* name() const = 0;
    virtual AllocTraits traits() const = 0;

    /// Called once per thread before first use.
    virtual void attach_thread(pod::ThreadContext& ctx) { (void)ctx; }

    /// Allocates @p size bytes; 0 on failure/exhaustion/unsupported size.
    virtual cxl::HeapOffset allocate(pod::ThreadContext& ctx,
                                     std::uint64_t size) = 0;

    virtual void deallocate(pod::ThreadContext& ctx,
                            cxl::HeapOffset offset) = 0;

    /// Access hooks for refcount-per-access designs (no-ops otherwise).
    virtual void
    on_access(pod::ThreadContext& ctx, cxl::HeapOffset offset)
    {
        (void)ctx;
        (void)offset;
    }

    virtual void
    after_access(pod::ThreadContext& ctx, cxl::HeapOffset offset)
    {
        (void)ctx;
        (void)offset;
    }

    /// Resolves an offset to bytes in this process.
    std::byte*
    pointer(pod::ThreadContext& ctx, cxl::HeapOffset offset,
            std::uint64_t len)
    {
        return ctx.mem().data_ptr(offset, len);
    }

    /// Bytes of HWcc (coherent / device-biased) memory the design needs —
    /// the paper's §5.2.1 "HWcc memory" metric.
    virtual std::uint64_t hwcc_bytes(cxl::MemSession& mem) = 0;

    /// Host-side metadata bytes not living on the device (added to the
    /// PSS-analog memory report).
    virtual std::uint64_t metadata_overhead_bytes() { return 0; }
};

} // namespace baselines
