/// @file
/// Huge allocations across processes (paper §3.3.2): one process creates a
/// mapping-backed huge allocation; another dereferences the offset and the
/// fault handler installs the mapping transparently (PC-T). The hazard
/// offset protocol then delays reclamation until every process unmapped.
///
/// Run: ./build/examples/huge_sharing

#include <cstdio>
#include <cstring>

#include "common/stats.h"
#include "cxlalloc/allocator.h"
#include "pod/pod.h"

int
main()
{
    cxlalloc::Config config;
    config.huge_regions = 16;
    config.huge_region_size = 16 << 20;
    pod::PodConfig pod_config;
    pod_config.device = cxlalloc::Layout(config).device_config(
        cxl::CoherenceMode::PartialHwcc);
    pod_config.checked_mappings = true; // enforce PC-T per access
    pod::Pod pod(pod_config);
    cxlalloc::CxlAllocator heap(pod, config);

    pod::Process* proc_a = pod.create_process();
    pod::Process* proc_b = pod.create_process();
    heap.attach(*proc_a);
    heap.attach(*proc_b);
    auto ta = pod.create_thread(proc_a);
    auto tb = pod.create_thread(proc_b);
    heap.attach_thread(*ta);
    heap.attach_thread(*tb);

    // Process A: a 12 MiB allocation backed by a fresh memory mapping.
    cxl::HeapOffset big = heap.allocate(*ta, 12 << 20);
    std::memcpy(heap.pointer(*ta, big, 64), "shared tensor", 14);
    std::printf("A allocated 12 MiB at offset 0x%llx (A mapped: %s)\n",
                static_cast<unsigned long long>(big),
                proc_a->is_mapped(big) ? "yes" : "no");

    // Process B dereferences the offset: the first touch faults, the
    // handler walks the huge descriptor lists, publishes a hazard offset,
    // and installs the mapping.
    std::printf("B mapped before access: %s\n",
                proc_b->is_mapped(big) ? "yes" : "no");
    const char* view =
        reinterpret_cast<const char*>(heap.pointer(*tb, big, 64));
    std::printf("B reads \"%s\" (faults resolved in B: %llu)\n", view,
                static_cast<unsigned long long>(proc_b->faults_resolved()));

    // A frees the allocation. B still has it mapped (hazard published), so
    // the address space is NOT reclaimed yet.
    heap.deallocate(*ta, big);
    heap.cleanup(*ta);
    std::uint64_t free_before =
        heap.thread_state(ta->tid()).huge_free.total();

    // B's asynchronous cleanup unmaps and removes its hazard; A's next
    // cleanup reclaims descriptor and address space.
    heap.cleanup(*tb);
    heap.cleanup(*ta);
    std::uint64_t free_after = heap.thread_state(ta->tid()).huge_free.total();
    std::printf("address space reclaimed after B unmapped: %s -> %s\n",
                cxlcommon::format_bytes(free_before).c_str(),
                cxlcommon::format_bytes(free_after).c_str());

    pod.release_thread(std::move(ta));
    pod.release_thread(std::move(tb));
    std::puts("huge_sharing OK");
    return 0;
}
