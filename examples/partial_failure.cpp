/// @file
/// Partial-failure demo (the paper's headline resilience story, §3.4):
/// a thread is killed in the middle of an allocator operation; live
/// threads keep allocating without ever blocking, and the dead thread's
/// slot is later adopted and recovered — non-blocking, no leak, no GC.
///
/// Run: ./build/examples/partial_failure

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "cxlalloc/allocator.h"
#include "cxlalloc/recovery.h"
#include "pod/pod.h"

int
main()
{
    cxlalloc::Config config;
    pod::PodConfig pod_config;
    pod_config.device = cxlalloc::Layout(config).device_config(
        cxl::CoherenceMode::PartialHwcc);
    pod::Pod pod(pod_config);
    cxlalloc::CxlAllocator heap(pod, config);
    pod::Process* proc = pod.create_process();
    heap.attach(*proc);

    // A victim thread builds up state, then dies inside an allocation —
    // right after its 8-byte redo record was flushed (think: OOM kill).
    auto victim = pod.create_thread(proc);
    heap.attach_thread(*victim);
    std::vector<cxl::HeapOffset> victims_data;
    for (int i = 0; i < 1000; i++) {
        victims_data.push_back(heap.allocate(*victim, 512));
    }
    victim->arm_crash(cxlalloc::crashpoint::kMidInit, 1);
    bool crashed = false;
    try {
        // Force a fresh-slab initialization so the armed point fires.
        for (int i = 0; i < 10000 && !crashed; i++) {
            heap.allocate(*victim, 8);
        }
    } catch (const pod::ThreadCrashed&) {
        crashed = true;
    }
    cxl::ThreadId dead = victim->tid();
    pod.mark_crashed(std::move(victim));
    std::printf("thread %u crashed mid-operation: %s\n", dead,
                crashed ? "yes" : "no (adjust crash point)");

    // Live threads are unaffected: no lock was left held, all shared
    // metadata is in a consistent state.
    auto live = pod.create_thread(proc);
    heap.attach_thread(*live);
    cxlcommon::Xoshiro rng(7);
    std::vector<cxl::HeapOffset> ptrs;
    for (int i = 0; i < 20000; i++) {
        ptrs.push_back(heap.allocate(*live, 8 + rng.next_below(1016)));
    }
    for (auto p : ptrs) {
        heap.deallocate(*live, p);
    }
    std::puts("live thread completed 20000 alloc/free pairs while the "
              "crashed slot awaited recovery");

    // Recovery: adopt the slot, replay the interrupted operation from its
    // redo record, and resume — the recovered thread can even free the
    // dead thread's objects.
    auto recovered = pod.adopt_thread(proc, dead);
    heap.recover(*recovered);
    for (auto p : victims_data) {
        heap.deallocate(*recovered, p);
    }
    heap.check_invariants(recovered->mem());
    std::puts("crashed slot adopted, operation replayed, inventory freed, "
              "invariants hold");

    pod.release_thread(std::move(live));
    pod.release_thread(std::move(recovered));
    std::puts("partial_failure OK");
    return 0;
}
