/// @file
/// End-to-end example: an in-memory key-value store on cxlalloc, driven by
/// the YCSB-A workload (the paper's §5.2.1 macro-benchmark shape) from two
/// threads in different processes.
///
/// Run: ./build/examples/kvstore_ycsb

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/cxlalloc_adapter.h"
#include "common/stats.h"
#include "cxlalloc/allocator.h"
#include "kv/kv_store.h"
#include "workload/kv_workload.h"

int
main()
{
    constexpr std::uint64_t kBuckets = 1 << 15;
    constexpr std::uint64_t kOpsPerThread = 100'000;
    constexpr int kThreads = 2;

    cxlalloc::Config config;
    config.small_slabs = 4096; // 128 MiB small space for 960 B values
    pod::PodConfig pod_config;
    pod_config.device = cxlalloc::Layout(config).device_config(
        cxl::CoherenceMode::PartialHwcc);
    // The index's bucket array lives past the heap, in extra device space.
    cxl::HeapOffset buckets = pod_config.device.size;
    pod_config.device.size += kv::HashTable::footprint(kBuckets);
    pod::Pod pod(pod_config);

    cxlalloc::CxlAllocator heap(pod, config);
    baselines::CxlallocAdapter adapter(&heap);
    kv::KvStore store(pod, buckets, kBuckets, &adapter);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; w++) {
        workers.emplace_back([&, w] {
            pod::Process* proc = pod.create_process();
            heap.attach(*proc);
            auto ctx = pod.create_thread(proc);
            heap.attach_thread(*ctx);

            workload::KvOpStream stream(workload::ycsb_a(), 1000 + w);
            std::vector<char> value(1024, 'v');
            std::vector<char> read_buf(1024);
            for (std::uint64_t i = 0; i < kOpsPerThread; i++) {
                workload::KvOp op = stream.next();
                switch (op.type) {
                  case workload::OpType::Insert:
                    store.insert(*ctx, op.key, op.klen, value.data(),
                                 op.vlen);
                    break;
                  case workload::OpType::Remove:
                    store.remove(*ctx, op.key, op.klen);
                    break;
                  default:
                    store.get(*ctx, op.key, op.klen, read_buf.data(),
                              read_buf.size());
                    break;
                }
            }
            pod.release_thread(std::move(ctx));
        });
    }
    for (auto& w : workers) {
        w.join();
    }
    auto elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

    double total_ops = static_cast<double>(kOpsPerThread) * kThreads;
    std::printf("YCSB-A: %s over %d threads/processes (%.2fs)\n",
                cxlcommon::format_rate(total_ops / elapsed).c_str(),
                kThreads, elapsed);
    std::printf("live entries: %llu\n",
                static_cast<unsigned long long>(store.table().size()));
    std::printf("memory committed: %s (HWcc share: %s)\n",
                cxlcommon::format_bytes(pod.device().committed_bytes())
                    .c_str(),
                cxlcommon::format_bytes(heap.layout().hwcc_bytes()).c_str());
    std::puts("kvstore_ycsb OK");
    return 0;
}
