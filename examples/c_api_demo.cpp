/// @file
/// The C-compatible interface in action: a pod shared by two "processes",
/// each worker thread bound once and then using plain malloc/free-shaped
/// calls. This is the adoption path for existing C/C++ applications.
///
/// Run: ./build/examples/c_api_demo

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "cxlalloc/c_api.h"

int
main()
{
    cxlalloc_options_t options = {};
    options.small_slabs = 1024;   // 32 MiB small space
    options.coherence = 1;        // limited HWcc (Fig. 1(A))
    cxlalloc_pod_t* pod = cxlalloc_pod_create(&options);

    cxlalloc_process_t* proc_a = cxlalloc_process_attach(pod);
    cxlalloc_process_t* proc_b = cxlalloc_process_attach(pod);

    // Producer in process A hands offsets to a consumer in process B.
    std::vector<uint64_t> mailbox(1000, 0);
    std::thread producer([&] {
        uint16_t tid = cxlalloc_thread_bind(proc_a);
        std::printf("producer bound as thread %u in process A\n", tid);
        for (std::size_t i = 0; i < mailbox.size(); i++) {
            uint64_t obj = cxlalloc_malloc(128);
            std::snprintf(static_cast<char*>(cxlalloc_ptr(obj, 128)), 128,
                          "object #%zu", i);
            mailbox[i] = obj;
        }
        cxlalloc_thread_unbind();
    });
    producer.join();

    std::thread consumer([&] {
        uint16_t tid = cxlalloc_thread_bind(proc_b);
        std::printf("consumer bound as thread %u in process B\n", tid);
        std::size_t checked = 0;
        for (uint64_t obj : mailbox) {
            char expect[32];
            std::snprintf(expect, sizeof expect, "object #%zu", checked);
            if (std::strcmp(static_cast<char*>(cxlalloc_ptr(obj, 128)),
                            expect) == 0) {
                checked++;
            }
            cxlalloc_free(obj); // remote free across processes
        }
        std::printf("consumer verified %zu/%zu objects and freed them\n",
                    checked, mailbox.size());
        cxlalloc_stats_t stats;
        cxlalloc_stats_get(&stats);
        std::printf("heap: %u small slabs, HWcc footprint %llu bytes\n",
                    stats.small_slabs_used,
                    static_cast<unsigned long long>(stats.hwcc_bytes));
        cxlalloc_thread_unbind();
    });
    consumer.join();

    cxlalloc_process_detach(proc_a);
    cxlalloc_process_detach(proc_b);
    cxlalloc_pod_destroy(pod);
    std::puts("c_api_demo OK");
    return 0;
}
