/// @file
/// Quickstart: bring up a simulated CXL pod, attach the cxlalloc heap,
/// and share an allocation between two "processes".
///
/// Run: ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "common/stats.h"
#include "cxlalloc/allocator.h"
#include "pod/pod.h"

int
main()
{
    // 1. Describe the heap. All sizes are tunable; the layout computes the
    //    device geometry (total size + HWcc region) from this.
    cxlalloc::Config config;
    config.small_slabs = 512;  // 16 MiB of small-object space
    config.large_slabs = 32;   // 16 MiB of large-object space
    config.huge_regions = 8;   // 8 x 8 MiB of huge space

    // 2. Build the pod: one shared CXL device with limited hardware cache
    //    coherence (HWcc only over the small metadata prefix).
    pod::PodConfig pod_config;
    pod_config.device = cxlalloc::Layout(config).device_config(
        cxl::CoherenceMode::PartialHwcc);
    pod::Pod pod(pod_config);

    // 3. Create the allocator. No heap initialization happens — zeroed
    //    device memory IS a valid empty heap, so any process can attach in
    //    any order with no coordination.
    cxlalloc::CxlAllocator heap(pod, config);

    // 4. Two processes attach (in reality: two hosts mapping the device).
    pod::Process* proc_a = pod.create_process();
    pod::Process* proc_b = pod.create_process();
    heap.attach(*proc_a);
    heap.attach(*proc_b);

    auto writer = pod.create_thread(proc_a);
    auto reader = pod.create_thread(proc_b);
    heap.attach_thread(*writer);
    heap.attach_thread(*reader);

    // 5. Allocate in process A. The returned value is an offset pointer:
    //    it names the same bytes in every process (PC-S).
    cxl::HeapOffset msg = heap.allocate(*writer, 64);
    std::snprintf(reinterpret_cast<char*>(heap.pointer(*writer, msg, 64)),
                  64, "hello from process A");

    // 6. Dereference in process B — immediately valid (PC-T).
    std::printf("process B reads: \"%s\"\n",
                reinterpret_cast<char*>(heap.pointer(*reader, msg, 64)));

    // 7. Free from process B: a remote free, synchronized through the
    //    per-slab HWcc counter.
    heap.deallocate(*reader, msg);

    // 8. A huge allocation backed by its own (simulated) memory mapping.
    cxl::HeapOffset big = heap.allocate(*writer, 4 << 20);
    std::memset(heap.pointer(*writer, big, 4 << 20), 0x2a, 4 << 20);
    heap.deallocate(*writer, big);
    heap.cleanup(*writer);

    auto stats = heap.stats(writer->mem());
    std::printf("heap: %u small slabs, %u large slabs, %u huge regions "
                "claimed\n",
                stats.small.length, stats.large.length,
                stats.huge.regions_claimed);
    std::printf("HWcc metadata: %s of %s total committed (%.3f%%)\n",
                cxlcommon::format_bytes(stats.hwcc_bytes).c_str(),
                cxlcommon::format_bytes(stats.committed_bytes).c_str(),
                100.0 * static_cast<double>(stats.hwcc_bytes) /
                    static_cast<double>(stats.committed_bytes));

    pod.release_thread(std::move(writer));
    pod.release_thread(std::move(reader));
    std::puts("quickstart OK");
    return 0;
}
